//! The assembled Opteron node: core store path (issue → MTRR → WC →
//! absorption), northbridge, memory controller and four HT links.
//!
//! The node is a *timed functional* model: every operation moves real bytes
//! and returns the simulated times at which effects become visible. The
//! cluster layer wires nodes' links together and turns emitted
//! [`Action`]s into events.
//!
//! The store/deliver path is allocation-free in steady state: callers
//! provide a reusable [`ActionSink`], packet payloads come from a per-node
//! [`PayloadPool`](crate::pool::PayloadPool), and whole messages can be
//! issued with one [`Node::store_burst`] call instead of a store-per-cell
//! driver loop.

use crate::mem::MemoryController;
use crate::mtrr::{MemType, Mtrrs};
use crate::nb::{Disposition, FlatPlan, NbError, Northbridge, Source};
use crate::params::UarchParams;
use crate::pool::PayloadPool;
use crate::regs::{LinkId, NodeId, NodeRegs, LINKS_PER_NODE};
use crate::wc::{Flush, WcBuffers};
use std::collections::VecDeque;
use tcc_fabric::channel::Channel;
use tcc_fabric::time::{Duration, SimTime};
use tcc_ht::link::{Delivery, LinkConfig, LinkTx};
use tcc_ht::packet::Packet;
use tcc_ht::protocol_violation;

/// An externally visible consequence of a node operation.
#[derive(Debug, Clone)]
pub enum Action {
    /// A packet left on `link`; it arrives at the far end at `arrival`.
    PacketOut {
        link: LinkId,
        packet: Packet,
        arrival: SimTime,
    },
    /// Data was committed to local DRAM, visible to polls at `visible`.
    LocalCommit { offset: u64, visible: SimTime },
    /// A broadcast was filtered (interrupt kept inside the node).
    BroadcastFiltered,
}

/// What the northbridge decided about one delivered packet — the routed
/// form of [`Node::deliver`] for engines that own the wire themselves and
/// must see a forward *before* it is transmitted.
#[derive(Debug)]
pub enum DeliverOutcome {
    /// The packet landed in local DRAM.
    Committed { offset: u64, visible: SimTime },
    /// The packet must leave again on `link`, entering that transmitter
    /// no earlier than `at` (crossbar forward latency paid).
    Forward {
        link: LinkId,
        packet: Packet,
        at: SimTime,
    },
    /// A broadcast was filtered (kept inside the node).
    Filtered,
}

/// Outcome of the flat fast lane ([`Node::deliver_flat`]). Unlike
/// [`DeliverOutcome`] it carries no packet: the caller classified the
/// packet, keeps ownership, and only needed the routing decision and
/// timing. Flat traffic is posted writes only, so `Filtered` cannot occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatOutcome {
    /// The line landed in local DRAM.
    Committed { offset: u64, visible: SimTime },
    /// The line must leave again on `link` no earlier than `at`.
    Forward { link: LinkId, at: SimTime },
}

/// Caller-provided scratch buffer collecting the [`Action`]s of one or
/// more node operations. Reusing one sink across a whole message (or a
/// whole benchmark loop) keeps the store path free of heap allocation.
#[derive(Debug, Default)]
pub struct ActionSink {
    actions: Vec<Action>,
}

impl ActionSink {
    pub fn new() -> Self {
        ActionSink::default()
    }

    pub fn clear(&mut self) {
        self.actions.clear();
    }

    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    pub fn as_slice(&self) -> &[Action] {
        &self.actions
    }

    /// Drain the collected actions in emission (FIFO) order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Action> {
        self.actions.drain(..)
    }
}

/// Result of issuing a store (or a burst of them).
#[derive(Debug, Clone, Copy)]
pub struct StoreOutcome {
    /// When the core may issue its next store: issue-stage time including
    /// store-queue backpressure. A streaming loop chains on this.
    pub issued: SimTime,
    /// When the store's data was accepted by the on-chip buffering — the
    /// time a sender-side benchmark observes for its last store. For
    /// `sfence` this is when the fence completes.
    pub retire: SimTime,
}

/// Shape of a [`Node::store_burst`]: a message as the paper's send loops
/// issue it — fixed-size payload cells at a fixed stride, an optional
/// trailing header store per cell, and the fence policy of the selected
/// ordering mode.
#[derive(Debug, Clone, Copy)]
pub struct BurstPattern {
    /// Payload bytes per cell (64 for ring cells, 8 for the UC ablation).
    pub cell_payload: usize,
    /// Address stride between consecutive cells (72 for ring cells with
    /// their headers, 64 for rendezvous lines).
    pub cell_stride: u64,
    /// Header store appended at `cell_payload` into each cell (0 = none).
    pub header_bytes: usize,
    /// Fill byte for payload stores.
    pub payload_fill: u8,
    /// Fill byte for header stores.
    pub header_fill: u8,
    /// Issue an `sfence` after every N cells, advancing the issue clock to
    /// the fence's retire (0 = never). 1 is the paper's strictly ordered
    /// mechanism.
    pub fence_every: usize,
    /// Issue one trailing `sfence` after the last cell without advancing
    /// the issue clock (the weakly ordered "push the tail out" fence).
    pub final_fence: bool,
    /// Wrap cell addresses at `base + wrap_bytes` (0 = no wrap); used by
    /// rendezvous payloads lapping their landing zone.
    pub wrap_bytes: u64,
}

/// One simulated Opteron package.
#[derive(Debug)]
pub struct Node {
    pub params: UarchParams,
    pub regs: NodeRegs,
    pub nb: Northbridge,
    pub mem: MemoryController,
    pub mtrrs: Mtrrs,
    wc: WcBuffers,
    links: [Option<LinkTx>; LINKS_PER_NODE],
    /// Store-issue rate limiter (the copy loop reading its source).
    issue: Channel,
    /// On-chip burst absorption stage (store queue + SRQ + downstream
    /// buffering; the Fig. 6 artifact).
    absorb: Channel,
    /// Wire-entry times of absorbed lines, for capacity backpressure.
    inflight: VecDeque<SimTime>,
    inflight_bytes: u64,
    /// Recycled packet payload slabs.
    pool: PayloadPool,
    /// Scratch for WC flushes drained by one store/fence.
    flush_scratch: Vec<Flush>,
    /// Scratch for link deliveries pumped by one disposition.
    dels_scratch: Vec<Delivery>,
    /// Memoised store-queue headroom keyed on its inputs (computing it
    /// involves an exact `u128` division, far too costly per store).
    sq_headroom_memo: (u64, u64, Duration),
    /// If set, link credits are returned instantly (used by open-loop
    /// microbenchmark harnesses where the receiver provably drains at
    /// line rate; the event-driven cluster sim disables it).
    pub auto_credit: bool,
    /// If set, [`transmit`](Self::transmit) bypasses the node's `LinkTx`
    /// and emits the packet at its northbridge-exit time: an external
    /// fabric engine owns wire serialisation, credits and arrival timing
    /// per hop, so the node must not serialise (or gate on credits) a
    /// second time.
    pub raw_egress: bool,
}

impl Node {
    pub fn new(node_id: NodeId, dram_capacity: usize, params: UarchParams) -> Self {
        let issue = Channel::new(Duration::ZERO, params.store_issue_bytes_per_sec);
        let absorb = Channel::new(Duration::ZERO, params.absorb_bytes_per_sec);
        let mem = MemoryController::new(dram_capacity, &params);
        let wc = WcBuffers::new(params.wc_buffers, params.wc_buffer_bytes);
        let flush_scratch = Vec::with_capacity(params.wc_buffers + 1);
        Node {
            nb: Northbridge::new(node_id),
            regs: NodeRegs::power_on(),
            mem,
            mtrrs: Mtrrs::new(),
            wc,
            links: [None, None, None, None],
            issue,
            absorb,
            inflight: VecDeque::new(),
            inflight_bytes: 0,
            pool: PayloadPool::new(),
            flush_scratch,
            dels_scratch: Vec::new(),
            sq_headroom_memo: (0, 0, Duration::ZERO),
            params,
            auto_credit: true,
            raw_egress: false,
        }
    }

    pub fn node_id(&self) -> NodeId {
        self.nb.node_id
    }

    /// Attach (or reconfigure) a link transmitter.
    pub fn attach_link(&mut self, link: LinkId, config: LinkConfig, seed: u64) {
        self.links[link.0 as usize] = Some(LinkTx::new(config, seed));
    }

    pub fn link(&self, link: LinkId) -> Option<&LinkTx> {
        self.links[link.0 as usize].as_ref()
    }

    pub fn link_mut(&mut self, link: LinkId) -> Option<&mut LinkTx> {
        self.links[link.0 as usize].as_mut()
    }

    /// Time by which the issue stage may run ahead of the absorption
    /// stage — the store queue's worth of buffering.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn sq_headroom(&mut self) -> Duration {
        let bytes = (self.params.srq_entries * self.params.wc_buffer_bytes) as u64;
        let rate = self.params.absorb_bytes_per_sec;
        if self.sq_headroom_memo.0 != bytes || self.sq_headroom_memo.1 != rate {
            self.sq_headroom_memo = (
                bytes,
                rate,
                Duration(tcc_fabric::channel::serialization_ps(bytes, rate)),
            );
        }
        self.sq_headroom_memo.2
    }

    /// Issue a store of `data` to global address `addr` at `now`,
    /// appending any externally visible consequences to `sink`.
    ///
    /// Stages pipeline: the returned `issued` (issue stage, gated by the
    /// store queue) is where a streaming loop chains its next store, while
    /// downstream stages (WC flush → absorption → northbridge → wire)
    /// proceed concurrently, each modelled by a busy-tracking channel.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn store(
        &mut self,
        now: SimTime,
        addr: u64,
        data: &[u8],
        sink: &mut ActionSink,
    ) -> StoreOutcome {
        // Store-queue backpressure: issue may lead absorption only by the
        // queue's drain time.
        let headroom = self.sq_headroom();
        let gate = SimTime(
            self.absorb
                .next_free()
                .picos()
                .saturating_sub(headroom.picos()),
        );
        let issued = self.issue.transfer(now.max(gate), data.len() as u64).sent;

        match self.mtrrs.resolve_span(addr, data.len() as u64) {
            MemType::WriteCombining => {
                let mut flushes = std::mem::take(&mut self.flush_scratch);
                flushes.clear();
                self.wc.store(addr, data, &mut flushes);
                let mut retire = issued;
                for f in &flushes {
                    retire = retire.max(self.emit_flush(issued, f, sink));
                }
                self.flush_scratch = flushes;
                StoreOutcome { issued, retire }
            }
            MemType::Uncacheable => {
                // UC stores bypass WC and are strongly ordered: issue one
                // packet/commit per store, serialised.
                let line_mask = self.params.wc_buffer_bytes as u64 - 1;
                let line_addr = addr & !line_mask;
                let off = (addr & line_mask) as usize;
                let retire = self.emit_runs(
                    issued,
                    line_addr,
                    data.len() as u64,
                    once_run(off, data),
                    sink,
                );
                StoreOutcome {
                    issued: retire,
                    retire,
                }
            }
            MemType::WriteBack => {
                // Ordinary cacheable store: local memory only. (A WB store
                // to a remote-mapped address would be a firmware bug; the
                // dispose path will reject it if it is not local DRAM.)
                let retire = self.commit_or_send(
                    issued,
                    addr & !63,
                    once_run((addr & 63) as usize, data),
                    sink,
                );
                StoreOutcome { issued, retire }
            }
        }
    }

    /// `sfence`: drain WC buffers, wait for all previously flushed stores
    /// to be accepted downstream, pay the serialisation cost, and return
    /// when the core may proceed.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn sfence(&mut self, now: SimTime, sink: &mut ActionSink) -> StoreOutcome {
        let mut drained = std::mem::take(&mut self.flush_scratch);
        drained.clear();
        self.wc.fence(&mut drained);
        // Serialises on *all* prior stores: earlier flushes still queued in
        // the absorption stage hold the fence too.
        let mut retire = now.max(self.absorb.next_free());
        for f in &drained {
            retire = retire.max(self.emit_flush(now, f, sink));
        }
        self.flush_scratch = drained;
        retire += self.params.sfence_drain;
        StoreOutcome {
            issued: retire,
            retire,
        }
    }

    /// Issue a whole message as one call: `len` payload bytes split into
    /// `pattern.cell_payload`-sized cells at `pattern.cell_stride`,
    /// optionally followed by a per-cell header store, fenced per the
    /// pattern. The issue clock chains through every store exactly as a
    /// caller looping over [`store`](Self::store)/[`sfence`](Self::sfence)
    /// would chain it, so timing is identical — but the driver loop, its
    /// per-cell payload buffers, and its per-store action vectors are gone.
    ///
    /// A message with `len == 0` still issues one (empty) cell so the
    /// header store happens — a zero-length eager message is a real
    /// message.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn store_burst(
        &mut self,
        now: SimTime,
        base: u64,
        pattern: &BurstPattern,
        len: usize,
        sink: &mut ActionSink,
    ) -> StoreOutcome {
        let cp = pattern.cell_payload;
        assert!(cp > 0 && cp <= 64, "cells are at most one line");
        assert!(pattern.header_bytes <= 8, "headers are at most 8 B");
        let payload = [pattern.payload_fill; 64];
        let header = [pattern.header_fill; 8];
        let cells = len.div_ceil(cp).max(1);
        let mut now = now;
        let mut retire = now;
        for c in 0..cells {
            let lane = (c as u64) * pattern.cell_stride;
            let cell_base = if pattern.wrap_bytes > 0 {
                base + lane % pattern.wrap_bytes
            } else {
                base + lane
            };
            let chunk = cp.min(len - (c * cp).min(len));
            if chunk > 0 {
                let out = self.store(now, cell_base, &payload[..chunk], sink);
                now = out.issued;
                retire = retire.max(out.retire);
            }
            if pattern.header_bytes > 0 {
                let out = self.store(
                    now,
                    cell_base + cp as u64,
                    &header[..pattern.header_bytes],
                    sink,
                );
                now = out.issued;
                retire = retire.max(out.retire);
            }
            if pattern.fence_every > 0 && (c + 1) % pattern.fence_every == 0 {
                let f = self.sfence(now, sink);
                now = f.retire;
                retire = retire.max(f.retire);
            }
        }
        if pattern.final_fence {
            let f = self.sfence(now, sink);
            retire = retire.max(f.retire);
        }
        StoreOutcome {
            issued: now,
            retire,
        }
    }

    /// Turn one WC flush into packets/commits. Returns the retire time —
    /// when the absorption stage accepted the data; the packet cuts
    /// through to the northbridge at absorption *start*.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn emit_flush(&mut self, at: SimTime, flush: &Flush, sink: &mut ActionSink) -> SimTime {
        self.emit_runs(
            at,
            flush.line_addr,
            flush.payload_bytes() as u64,
            flush.runs(),
            sink,
        )
    }

    /// Absorption-stage accounting shared by WC flushes and UC stores.
    /// `bytes` must equal the total length of `runs`.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    fn emit_runs<'a>(
        &mut self,
        at: SimTime,
        line_addr: u64,
        bytes: u64,
        runs: impl Iterator<Item = (usize, &'a [u8])>,
        sink: &mut ActionSink,
    ) -> SimTime {
        let t_wc = at + self.params.wc_flush;
        // Absorption-window backpressure: acceptance stalls until the
        // oldest absorbed line has reached the wire.
        let mut gate = t_wc;
        while self.inflight_bytes + bytes > self.params.absorb_capacity_bytes {
            // inflight_bytes > 0 implies a tracked arrival; an empty
            // deque just means nothing is left to wait on.
            let Some(oldest) = self.inflight.pop_front() else {
                break;
            };
            self.inflight_bytes -= self.params.wc_buffer_bytes as u64;
            gate = gate.max(oldest);
        }
        let tr = self.absorb.transfer(gate, bytes);
        let before = sink.len();
        let wire_time = self.commit_or_send(tr.start, line_addr, runs, sink);
        // Track in-flight for capacity backpressure (only traffic that
        // leaves on a link occupies the window; local commits drain fast).
        if sink.as_slice()[before..]
            .iter()
            .any(|a| matches!(a, Action::PacketOut { .. }))
        {
            self.inflight.push_back(wire_time);
            self.inflight_bytes += self.params.wc_buffer_bytes as u64;
        }
        tr.sent
    }

    /// Dispose runs of bytes at `line_addr` through the northbridge: local
    /// commit or posted-write packets out a link. Returns the time the
    /// last packet entered the wire / commit finished.
    fn commit_or_send<'a>(
        &mut self,
        at: SimTime,
        line_addr: u64,
        runs: impl Iterator<Item = (usize, &'a [u8])>,
        sink: &mut ActionSink,
    ) -> SimTime {
        let mut done = at;
        for (off, bytes) in runs {
            let addr = line_addr + off as u64;
            let pkt = Packet::posted_write(addr, self.pool.alloc(bytes));
            match self.nb.dispose(&pkt, Source::Core) {
                Ok(Disposition::LocalMemory { offset, .. }) => {
                    let visible = self.mem.write(at + self.params.nb_tx, offset, bytes);
                    done = done.max(visible);
                    sink.push(Action::LocalCommit { offset, visible });
                }
                Ok(Disposition::Forward { link }) => {
                    let t_nb = at + self.params.nb_tx;
                    done = done.max(self.transmit(link, pkt, t_nb, sink));
                }
                Ok(Disposition::Filtered { .. }) => sink.push(Action::BroadcastFiltered),
                Err(e) => protocol_violation!("store to {addr:#x} unroutable: {e:?}"),
            }
        }
        done
    }

    /// Enqueue `pkt` on `link`, pump the transmitter at `t`, return
    /// credits if auto-credit is on, and sink a `PacketOut` per delivery.
    /// Returns the latest arrival time.
    fn transmit(
        &mut self,
        link: LinkId,
        pkt: Packet,
        t: SimTime,
        sink: &mut ActionSink,
    ) -> SimTime {
        if self.raw_egress {
            sink.push(Action::PacketOut {
                link,
                packet: pkt,
                arrival: t,
            });
            return t;
        }
        let auto = self.auto_credit;
        let mut dels = std::mem::take(&mut self.dels_scratch);
        dels.clear();
        let Some(tx) = self.links[link.0 as usize].as_mut() else {
            protocol_violation!("packet routed to unattached link {link:?}");
        };
        tx.send_into(t, pkt, &mut dels);
        if auto {
            for d in &dels {
                let mut ret = tcc_ht::flow::CreditReturn::default();
                ret.cmd[d.packet.vc().index()] = 1;
                if !d.packet.data.is_empty() {
                    ret.data[d.packet.vc().index()] = 1;
                }
                if let Err(e) = tx.credit_return(ret) {
                    protocol_violation!("auto-credit return out of step: {e}");
                }
            }
        }
        let mut done = t;
        for d in dels.drain(..) {
            done = done.max(d.arrival);
            sink.push(Action::PacketOut {
                link,
                packet: d.packet,
                arrival: d.arrival,
            });
        }
        self.dels_scratch = dels;
        done
    }

    /// A packet arrives on `link` at `now` — the receive path. Follow-on
    /// consequences (DRAM commit, forwarded packets) are appended to
    /// `sink`.
    pub fn deliver(
        &mut self,
        now: SimTime,
        link: LinkId,
        packet: Packet,
        coherent: bool,
        sink: &mut ActionSink,
    ) -> Result<(), NbError> {
        match self.deliver_routed(now, link, packet, coherent)? {
            DeliverOutcome::Committed { offset, visible } => {
                sink.push(Action::LocalCommit { offset, visible });
            }
            DeliverOutcome::Forward {
                link: out,
                packet,
                at,
            } => {
                self.transmit(out, packet, at, sink);
            }
            DeliverOutcome::Filtered => sink.push(Action::BroadcastFiltered),
        }
        Ok(())
    }

    /// The receive path with the routing decision *returned* instead of
    /// acted on: a local commit happens here (DRAM timing is the node's),
    /// but a forward is handed back untransmitted so an event-driven
    /// fabric engine can put the packet on its own per-wire channel.
    pub fn deliver_routed(
        &mut self,
        now: SimTime,
        link: LinkId,
        packet: Packet,
        coherent: bool,
    ) -> Result<DeliverOutcome, NbError> {
        let src = Source::Link { id: link, coherent };
        match self.nb.dispose(&packet, src)? {
            Disposition::LocalMemory { offset, bridged } => {
                let lat = if bridged {
                    self.params.nb_rx // includes the IO bridge conversion
                } else {
                    self.params.xbar_forward
                };
                let visible = self.mem.write(now + lat, offset, &packet.data);
                Ok(DeliverOutcome::Committed { offset, visible })
            }
            Disposition::Forward { link: out } => Ok(DeliverOutcome::Forward {
                link: out,
                packet,
                at: now + self.params.xbar_forward,
            }),
            Disposition::Filtered { .. } => Ok(DeliverOutcome::Filtered),
        }
    }

    /// The flat fast lane of [`deliver_routed`](Self::deliver_routed):
    /// the routing decision was precomputed into `plan` (one
    /// [`FlatTable`](crate::nb::FlatTable) lookup at the caller), so only
    /// the timed effects remain — a straight line with no command match,
    /// no address-map walk, no routing-table hop. Statistics advance
    /// exactly as `dispose` would advance them, so counters stay identical
    /// whichever lane a packet took.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn deliver_flat(
        &mut self,
        now: SimTime,
        plan: FlatPlan,
        addr: u64,
        data: &[u8],
        bridged: bool,
    ) -> FlatOutcome {
        self.nb.requests_routed += 1;
        match plan {
            FlatPlan::Local { base, local_base } => {
                let lat = if bridged {
                    self.params.nb_rx
                } else {
                    self.params.xbar_forward
                };
                let offset = local_base + (addr - base);
                let visible = self.mem.write(now + lat, offset, data);
                FlatOutcome::Committed { offset, visible }
            }
            FlatPlan::Forward { link } => {
                self.nb.packets_forwarded += 1;
                FlatOutcome::Forward {
                    link,
                    at: now + self.params.xbar_forward,
                }
            }
        }
    }

    /// An uncached poll: read `len` bytes at local DRAM `offset`. Returns
    /// the bytes and the completion time (`now + uc_read`).
    pub fn uc_poll(&mut self, now: SimTime, offset: u64, len: usize) -> (Vec<u8>, SimTime) {
        let data = self.mem.peek(offset, len).to_vec();
        (data, now + self.params.uc_read)
    }

    /// Reset the node's dynamic pipeline state (between benchmark runs),
    /// keeping configuration (address map, MTRRs, link configs).
    pub fn quiesce(&mut self) {
        self.issue.reset();
        self.absorb.reset();
        self.inflight.clear();
        self.inflight_bytes = 0;
        self.mem.quiesce();
        for tx in self.links.iter_mut().flatten() {
            let cfg = tx.config;
            tx.warm_reset(cfg);
        }
        // Drop any residue held in WC buffers.
        let mut drained = std::mem::take(&mut self.flush_scratch);
        drained.clear();
        self.wc.fence(&mut drained);
        drained.clear();
        self.flush_scratch = drained;
    }
}

/// A single-run iterator for the UC/WB store paths (the run may be longer
/// than the remainder of the line; the packet carries it whole, exactly
/// as the pre-pool implementation did).
fn once_run(off: usize, data: &[u8]) -> impl Iterator<Item = (usize, &[u8])> + Clone {
    std::iter::once((off, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{symmetric, Route};
    use bytes::Bytes;

    const TCC: LinkId = LinkId(2);

    /// A node configured like paper Fig. 3 Node0: local DRAM 64 KB at
    /// global 0x1_0000, remote window above it out the TCC link.
    fn tcc_node() -> Node {
        let mut n = Node::new(NodeId(0), 1 << 20, UarchParams::shanghai());
        n.nb.addr_map
            .add_dram(0x1_0000, 0x2_0000, NodeId(0))
            .unwrap();
        n.nb.addr_map
            .add_mmio(0x2_0000, 0x10_0000, NodeId(0), TCC)
            .unwrap();
        n.nb.routes.set(NodeId(0), symmetric(Route::SelfRoute));
        n.mtrrs.program(0x1_0000, 0x2_0000, MemType::Uncacheable);
        n.mtrrs
            .program(0x2_0000, 0x10_0000, MemType::WriteCombining);
        n.attach_link(TCC, LinkConfig::PROTOTYPE, 7);
        n
    }

    #[test]
    fn remote_wc_store_emits_packet_on_line_fill() {
        let mut n = tcc_node();
        let mut sink = ActionSink::new();
        for i in 0..8u64 {
            n.store(SimTime::ZERO, 0x2_0000 + i * 8, &[i as u8; 8], &mut sink);
        }
        let pkts: Vec<_> = sink
            .as_slice()
            .iter()
            .filter_map(|a| match a {
                Action::PacketOut {
                    packet, arrival, ..
                } => Some((packet, *arrival)),
                _ => None,
            })
            .collect();
        assert_eq!(pkts.len(), 1, "one full-line packet");
        assert_eq!(pkts[0].0.data.len(), 64);
        assert_eq!(pkts[0].0.addr(), Some(0x2_0000));
        // Arrival ≈ wc_flush(5) + nb_tx(20) + ser(~22.7) + hop(50) ≈ 98 ns
        // (plus issue-rate time for 64 B at 12.8 GB/s = 5 ns).
        let ns = pkts[0].1.nanos();
        assert!((ns - 103.0).abs() < 3.0, "arrival = {ns} ns");
    }

    #[test]
    fn local_uc_store_commits_to_dram() {
        let mut n = tcc_node();
        let mut sink = ActionSink::new();
        n.store(SimTime::ZERO, 0x1_0040, &[9u8; 8], &mut sink);
        match sink.as_slice() {
            [Action::LocalCommit { offset, visible }] => {
                assert_eq!(*offset, 0x40);
                assert!(visible.nanos() > 0.0);
                assert_eq!(n.mem.peek(0x40, 8), &[9u8; 8]);
            }
            other => panic!("unexpected actions {other:?}"),
        }
    }

    #[test]
    fn partial_line_needs_fence() {
        let mut n = tcc_node();
        let mut sink = ActionSink::new();
        n.store(SimTime::ZERO, 0x2_0000, &[1u8; 8], &mut sink);
        assert!(sink.is_empty(), "held in WC buffer");
        let f = n.sfence(SimTime(100_000), &mut sink);
        let pkts = sink
            .as_slice()
            .iter()
            .filter(|a| matches!(a, Action::PacketOut { .. }))
            .count();
        assert_eq!(pkts, 1);
        assert!(f.retire >= SimTime(100_000) + UarchParams::shanghai().sfence_drain);
    }

    #[test]
    fn store_burst_matches_manual_loop() {
        // Two identical nodes: one driven by store_burst, one by the
        // equivalent store()/sfence() loop. Times and memory must agree
        // exactly.
        let pattern = BurstPattern {
            cell_payload: 64,
            cell_stride: 72,
            header_bytes: 8,
            payload_fill: 0xD5,
            header_fill: 0xAD,
            fence_every: 1,
            final_fence: false,
            wrap_bytes: 0,
        };
        let len = 200; // 4 cells, short tail
        let mut burst_node = tcc_node();
        let mut sink = ActionSink::new();
        let out = burst_node.store_burst(SimTime::ZERO, 0x2_0000, &pattern, len, &mut sink);

        let mut loop_node = tcc_node();
        let mut loop_sink = ActionSink::new();
        let mut now = SimTime::ZERO;
        let mut retire = now;
        let cells = len.div_ceil(64);
        for c in 0..cells {
            let base = 0x2_0000 + (c as u64) * 72;
            let chunk = 64.min(len - c * 64);
            let o = loop_node.store(now, base, &[0xD5u8; 64][..chunk], &mut loop_sink);
            now = o.issued;
            retire = retire.max(o.retire);
            let o = loop_node.store(now, base + 64, &[0xADu8; 8], &mut loop_sink);
            now = o.issued;
            retire = retire.max(o.retire);
            let f = loop_node.sfence(now, &mut loop_sink);
            now = f.retire;
            retire = retire.max(f.retire);
        }
        assert_eq!(out.issued, now);
        assert_eq!(out.retire, retire);
        assert_eq!(sink.len(), loop_sink.len());
    }

    #[test]
    fn delivery_lands_in_dram_with_bridge_latency() {
        let mut n = tcc_node();
        let pkt = Packet::posted_write(0x1_0100, Bytes::from(vec![0x5A; 64]));
        let mut sink = ActionSink::new();
        n.deliver(SimTime::ZERO, TCC, pkt, false, &mut sink)
            .unwrap();
        match sink.as_slice() {
            [Action::LocalCommit { offset, visible }] => {
                assert_eq!(*offset, 0x100);
                // nb_rx(20) + DRAM ser(~6) + commit(10) ≈ 36 ns.
                assert!((visible.nanos() - 36.0).abs() < 3.0, "{visible}");
                assert_eq!(n.mem.peek(0x100, 64), &[0x5A; 64]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deliver_flat_matches_deliver_routed() {
        // Local commit and forward, each on a fresh node per lane: times,
        // memory contents and northbridge counters must agree exactly.
        for addr in [0x1_0100u64, 0x2_0040] {
            let mut general = tcc_node();
            let mut flat = tcc_node();
            let table = flat.nb.flat_table();
            let pkt = Packet::posted_write(addr, Bytes::from(vec![0xC3; 64]));
            let plan = table.lookup(addr).expect("mapped address has a flat plan");
            let got = flat.deliver_flat(SimTime::ZERO, plan, addr, &pkt.data, true);
            let want = general
                .deliver_routed(SimTime::ZERO, TCC, pkt, false)
                .unwrap();
            match (got, want) {
                (
                    FlatOutcome::Committed { offset, visible },
                    DeliverOutcome::Committed {
                        offset: o,
                        visible: v,
                    },
                ) => {
                    assert_eq!(offset, o);
                    assert_eq!(visible, v);
                    assert_eq!(flat.mem.peek(offset, 64), general.mem.peek(o, 64));
                }
                (
                    FlatOutcome::Forward { link, at },
                    DeliverOutcome::Forward { link: l, at: t, .. },
                ) => {
                    assert_eq!(link, l);
                    assert_eq!(at, t);
                }
                (g, w) => panic!("lanes disagree at {addr:#x}: {g:?} vs {w:?}"),
            }
            assert_eq!(flat.nb.requests_routed, general.nb.requests_routed);
            assert_eq!(flat.nb.packets_forwarded, general.nb.packets_forwarded);
        }
    }

    #[test]
    fn uc_poll_times_and_reads() {
        let mut n = tcc_node();
        n.mem.poke(0x200, &[0xEE; 8]);
        let (data, done) = n.uc_poll(SimTime::ZERO, 0x200, 8);
        assert_eq!(data, vec![0xEE; 8]);
        assert_eq!(done, SimTime(70_000), "one UC read round trip");
    }

    #[test]
    fn streaming_converges_to_wire_rate() {
        // 1 MB weakly-ordered stream: retire-rate far above capacity must
        // converge to the link rate (~2.82 GB/s goodput for 64 B packets).
        let mut n = tcc_node();
        let mut sink = ActionSink::new();
        let total: u64 = 1 << 20;
        let mut now = SimTime::ZERO;
        let mut retire = SimTime::ZERO;
        for i in 0..total / 64 {
            let addr = 0x2_0000 + (i * 64) % 0x4_0000; // reuse window
            let o = n.store(now, addr, &[0u8; 64], &mut sink);
            now = o.issued;
            retire = o.retire;
            sink.clear();
        }
        let rate = total as f64 / (retire.picos() as f64 / 1e12) / 1e6;
        // Above link goodput because the tail sits in buffers, but below
        // absorb rate; with capacity 256 KB and 1 MB sent the inflation is
        // bounded by ~33%.
        assert!(rate > 2700.0 && rate < 4000.0, "rate = {rate:.0} MB/s");
    }

    #[test]
    fn short_burst_absorbed_at_absorb_rate() {
        // 128 KB fits in the 256 KB absorption window: the sender-side
        // retire rate is the absorb rate (~5.5 GB/s), not the link rate —
        // the Fig. 6 artifact.
        let mut n = tcc_node();
        let mut sink = ActionSink::new();
        let total: u64 = 128 << 10;
        let mut now = SimTime::ZERO;
        let mut retire = SimTime::ZERO;
        for i in 0..total / 64 {
            let o = n.store(now, 0x2_0000 + i * 64, &[0u8; 64], &mut sink);
            now = o.issued;
            retire = o.retire;
            sink.clear();
        }
        let rate = total as f64 / (retire.picos() as f64 / 1e12) / 1e6;
        assert!((rate - 5500.0).abs() < 300.0, "rate = {rate:.0} MB/s");
    }

    #[test]
    fn steady_state_stream_recycles_payload_slabs() {
        let mut n = tcc_node();
        let mut sink = ActionSink::new();
        let mut now = SimTime::ZERO;
        for i in 0..4096u64 {
            let addr = 0x2_0000 + (i * 64) % 0x4_0000;
            let o = n.store(now, addr, &[0u8; 64], &mut sink);
            now = o.issued;
            sink.clear(); // dropping the actions releases the payloads
        }
        assert!(
            n.pool.slots() <= 4,
            "pool stays small: {} slabs",
            n.pool.slots()
        );
        assert!(n.pool.served > 4000);
    }

    #[test]
    fn quiesce_resets_pipeline() {
        let mut n = tcc_node();
        let mut sink = ActionSink::new();
        for i in 0..1000u64 {
            n.store(SimTime::ZERO, 0x2_0000 + i * 64, &[0u8; 64], &mut sink);
            sink.clear();
        }
        n.quiesce();
        let o = n.store(SimTime::ZERO, 0x2_0000, &[0u8; 64], &mut sink);
        assert!(o.retire.nanos() < 100.0, "fresh pipeline");
    }
}
