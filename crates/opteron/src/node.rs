//! The assembled Opteron node: core store path (issue → MTRR → WC →
//! absorption), northbridge, memory controller and four HT links.
//!
//! The node is a *timed functional* model: every operation moves real bytes
//! and returns the simulated times at which effects become visible. The
//! cluster layer wires nodes' links together and turns returned
//! [`Action`]s into events.

use crate::mem::MemoryController;
use crate::mtrr::{MemType, Mtrrs};
use crate::nb::{Disposition, NbError, Northbridge, Source};
use crate::params::UarchParams;
use crate::regs::{LinkId, NodeId, NodeRegs, LINKS_PER_NODE};
use crate::wc::WcBuffers;
use bytes::Bytes;
use std::collections::VecDeque;
use tcc_fabric::channel::Channel;
use tcc_fabric::time::{Duration, SimTime};
use tcc_ht::link::{LinkConfig, LinkTx};
use tcc_ht::packet::Packet;

/// An externally visible consequence of a node operation.
#[derive(Debug, Clone)]
pub enum Action {
    /// A packet left on `link`; it arrives at the far end at `arrival`.
    PacketOut {
        link: LinkId,
        packet: Packet,
        arrival: SimTime,
    },
    /// Data was committed to local DRAM, visible to polls at `visible`.
    LocalCommit { offset: u64, visible: SimTime },
    /// A broadcast was filtered (interrupt kept inside the node).
    BroadcastFiltered,
}

/// Result of issuing a store.
#[derive(Debug, Clone)]
pub struct StoreOutcome {
    /// When the core may issue its next store: issue-stage time including
    /// store-queue backpressure. A streaming loop chains on this.
    pub issued: SimTime,
    /// When the store's data was accepted by the on-chip buffering — the
    /// time a sender-side benchmark observes for its last store. For
    /// `sfence` this is when the fence completes.
    pub retire: SimTime,
    pub actions: Vec<Action>,
}

/// One simulated Opteron package.
#[derive(Debug)]
pub struct Node {
    pub params: UarchParams,
    pub regs: NodeRegs,
    pub nb: Northbridge,
    pub mem: MemoryController,
    pub mtrrs: Mtrrs,
    wc: WcBuffers,
    links: [Option<LinkTx>; LINKS_PER_NODE],
    /// Store-issue rate limiter (the copy loop reading its source).
    issue: Channel,
    /// On-chip burst absorption stage (store queue + SRQ + downstream
    /// buffering; the Fig. 6 artifact).
    absorb: Channel,
    /// Wire-entry times of absorbed lines, for capacity backpressure.
    inflight: VecDeque<SimTime>,
    inflight_bytes: u64,
    /// If set, link credits are returned instantly (used by open-loop
    /// microbenchmark harnesses where the receiver provably drains at
    /// line rate; the event-driven cluster sim disables it).
    pub auto_credit: bool,
}

impl Node {
    pub fn new(node_id: NodeId, dram_capacity: usize, params: UarchParams) -> Self {
        let issue = Channel::new(Duration::ZERO, params.store_issue_bytes_per_sec);
        let absorb = Channel::new(Duration::ZERO, params.absorb_bytes_per_sec);
        let mem = MemoryController::new(dram_capacity, &params);
        let wc = WcBuffers::new(params.wc_buffers, params.wc_buffer_bytes);
        Node {
            nb: Northbridge::new(node_id),
            regs: NodeRegs::power_on(),
            mem,
            mtrrs: Mtrrs::new(),
            wc,
            links: [None, None, None, None],
            issue,
            absorb,
            inflight: VecDeque::new(),
            inflight_bytes: 0,
            params,
            auto_credit: true,
        }
    }

    pub fn node_id(&self) -> NodeId {
        self.nb.node_id
    }

    /// Attach (or reconfigure) a link transmitter.
    pub fn attach_link(&mut self, link: LinkId, config: LinkConfig, seed: u64) {
        self.links[link.0 as usize] = Some(LinkTx::new(config, seed));
    }

    pub fn link(&self, link: LinkId) -> Option<&LinkTx> {
        self.links[link.0 as usize].as_ref()
    }

    pub fn link_mut(&mut self, link: LinkId) -> Option<&mut LinkTx> {
        self.links[link.0 as usize].as_mut()
    }

    /// Time by which the issue stage may run ahead of the absorption
    /// stage — the store queue's worth of buffering.
    fn sq_headroom(&self) -> Duration {
        let bytes = (self.params.srq_entries * self.params.wc_buffer_bytes) as u64;
        Duration(tcc_fabric::channel::serialization_ps(
            bytes,
            self.params.absorb_bytes_per_sec,
        ))
    }

    /// Issue a store of `data` to global address `addr` at `now`.
    ///
    /// Stages pipeline: the returned `issued` (issue stage, gated by the
    /// store queue) is where a streaming loop chains its next store, while
    /// downstream stages (WC flush → absorption → northbridge → wire)
    /// proceed concurrently, each modelled by a busy-tracking channel.
    pub fn store(&mut self, now: SimTime, addr: u64, data: &[u8]) -> StoreOutcome {
        // Store-queue backpressure: issue may lead absorption only by the
        // queue's drain time.
        let headroom = self.sq_headroom();
        let gate = SimTime(self.absorb.next_free().picos().saturating_sub(headroom.picos()));
        let issued = self.issue.transfer(now.max(gate), data.len() as u64).sent;

        match self.mtrrs.resolve_span(addr, data.len() as u64) {
            MemType::WriteCombining => {
                let flushes = self.wc.store(addr, data);
                let mut retire = issued;
                let mut actions = Vec::new();
                for f in flushes {
                    let (t, acts) = self.emit_flush(issued, f);
                    retire = retire.max(t);
                    actions.extend(acts);
                }
                StoreOutcome {
                    issued,
                    retire,
                    actions,
                }
            }
            MemType::Uncacheable => {
                // UC stores bypass WC and are strongly ordered: issue one
                // packet/commit per store, serialised.
                let flush = crate::wc::Flush {
                    line_addr: addr & !(self.params.wc_buffer_bytes as u64 - 1),
                    runs: vec![(
                        (addr & (self.params.wc_buffer_bytes as u64 - 1)) as usize,
                        data.to_vec(),
                    )],
                };
                let (retire, actions) = self.emit_flush(issued, flush);
                StoreOutcome {
                    issued: retire,
                    retire,
                    actions,
                }
            }
            MemType::WriteBack => {
                // Ordinary cacheable store: local memory only. (A WB store
                // to a remote-mapped address would be a firmware bug; the
                // dispose path will reject it if it is not local DRAM.)
                let (retire, actions) = self.commit_or_send(
                    issued,
                    addr & !63,
                    vec![((addr & 63) as usize, data.to_vec())],
                    false,
                );
                StoreOutcome {
                    issued,
                    retire,
                    actions,
                }
            }
        }
    }

    /// `sfence`: drain WC buffers, wait for all previously flushed stores
    /// to be accepted downstream, pay the serialisation cost, and return
    /// when the core may proceed.
    pub fn sfence(&mut self, now: SimTime) -> StoreOutcome {
        let drained = self.wc.fence();
        // Serialises on *all* prior stores: earlier flushes still queued in
        // the absorption stage hold the fence too.
        let mut retire = now.max(self.absorb.next_free());
        let mut actions = Vec::new();
        for f in drained {
            let (t, acts) = self.emit_flush(now, f);
            retire = retire.max(t);
            actions.extend(acts);
        }
        retire += self.params.sfence_drain;
        StoreOutcome {
            issued: retire,
            retire,
            actions,
        }
    }

    /// Turn one WC flush into packets/commits. Returns (retire, actions):
    /// retire is when the absorption stage accepted the data; the packet
    /// cuts through to the northbridge at absorption *start*.
    fn emit_flush(
        &mut self,
        at: SimTime,
        flush: crate::wc::Flush,
    ) -> (SimTime, Vec<Action>) {
        let t_wc = at + self.params.wc_flush;
        let bytes: u64 = flush.payload_bytes() as u64;
        // Absorption-window backpressure: acceptance stalls until the
        // oldest absorbed line has reached the wire.
        let mut gate = t_wc;
        while self.inflight_bytes + bytes > self.params.absorb_capacity_bytes {
            let oldest = self.inflight.pop_front().expect("inflight non-empty");
            self.inflight_bytes -= self.params.wc_buffer_bytes as u64;
            gate = gate.max(oldest);
        }
        let tr = self.absorb.transfer(gate, bytes);
        let (wire_time, actions) = self.commit_or_send(tr.start, flush.line_addr, flush.runs, true);
        // Track in-flight for capacity backpressure (only traffic that
        // leaves on a link occupies the window; local commits drain fast).
        if actions
            .iter()
            .any(|a| matches!(a, Action::PacketOut { .. }))
        {
            self.inflight.push_back(wire_time);
            self.inflight_bytes += self.params.wc_buffer_bytes as u64;
        }
        (tr.sent, actions)
    }

    /// Dispose runs of bytes at `line_addr` through the northbridge: local
    /// commit or posted-write packets out a link. Returns (time the last
    /// packet entered the wire / commit finished, actions).
    fn commit_or_send(
        &mut self,
        at: SimTime,
        line_addr: u64,
        runs: Vec<(usize, Vec<u8>)>,
        _from_wc: bool,
    ) -> (SimTime, Vec<Action>) {
        let mut actions = Vec::new();
        let mut done = at;
        for (off, bytes) in runs {
            let addr = line_addr + off as u64;
            let pkt = Packet::posted_write(addr, Bytes::from(bytes.clone()));
            match self.nb.dispose(&pkt, Source::Core) {
                Ok(Disposition::LocalMemory { offset, .. }) => {
                    let visible = self.mem.write(at + self.params.nb_tx, offset, &bytes);
                    done = done.max(visible);
                    actions.push(Action::LocalCommit { offset, visible });
                }
                Ok(Disposition::Forward { link }) => {
                    let t_nb = at + self.params.nb_tx;
                    let auto = self.auto_credit;
                    let tx = self.links[link.0 as usize]
                        .as_mut()
                        .unwrap_or_else(|| panic!("store routed to unattached link {link:?}"));
                    tx.enqueue(pkt);
                    let dels = tx.pump(t_nb);
                    if auto {
                        for d in &dels {
                            let mut ret = tcc_ht::flow::CreditReturn::default();
                            ret.cmd[d.packet.vc().index()] = 1;
                            if !d.packet.data.is_empty() {
                                ret.data[d.packet.vc().index()] = 1;
                            }
                            tx.credit_return(ret);
                        }
                    }
                    for d in dels {
                        done = done.max(d.arrival);
                        actions.push(Action::PacketOut {
                            link,
                            packet: d.packet,
                            arrival: d.arrival,
                        });
                    }
                }
                Ok(Disposition::Filtered { .. }) => actions.push(Action::BroadcastFiltered),
                Err(e) => panic!("store to {addr:#x} unroutable: {e:?}"),
            }
        }
        (done, actions)
    }

    /// A packet arrives on `link` at `now` — the receive path.
    pub fn deliver(
        &mut self,
        now: SimTime,
        link: LinkId,
        packet: Packet,
        coherent: bool,
    ) -> Result<Vec<Action>, NbError> {
        let src = Source::Link { id: link, coherent };
        match self.nb.dispose(&packet, src)? {
            Disposition::LocalMemory { offset, bridged } => {
                let lat = if bridged {
                    self.params.nb_rx // includes the IO bridge conversion
                } else {
                    self.params.xbar_forward
                };
                let visible = self.mem.write(now + lat, offset, &packet.data);
                Ok(vec![Action::LocalCommit { offset, visible }])
            }
            Disposition::Forward { link: out } => {
                let t = now + self.params.xbar_forward;
                let auto = self.auto_credit;
                let tx = self.links[out.0 as usize]
                    .as_mut()
                    .expect("forward to unattached link");
                tx.enqueue(packet);
                let dels = tx.pump(t);
                if auto {
                    for d in &dels {
                        let mut ret = tcc_ht::flow::CreditReturn::default();
                        ret.cmd[d.packet.vc().index()] = 1;
                        if !d.packet.data.is_empty() {
                            ret.data[d.packet.vc().index()] = 1;
                        }
                        tx.credit_return(ret);
                    }
                }
                Ok(dels
                    .into_iter()
                    .map(|d| Action::PacketOut {
                        link: out,
                        packet: d.packet,
                        arrival: d.arrival,
                    })
                    .collect())
            }
            Disposition::Filtered { .. } => Ok(vec![Action::BroadcastFiltered]),
        }
    }

    /// An uncached poll: read `len` bytes at local DRAM `offset`. Returns
    /// the bytes and the completion time (`now + uc_read`).
    pub fn uc_poll(&mut self, now: SimTime, offset: u64, len: usize) -> (Vec<u8>, SimTime) {
        let data = self.mem.peek(offset, len).to_vec();
        (data, now + self.params.uc_read)
    }

    /// Reset the node's dynamic pipeline state (between benchmark runs),
    /// keeping configuration (address map, MTRRs, link configs).
    pub fn quiesce(&mut self) {
        self.issue.reset();
        self.absorb.reset();
        self.inflight.clear();
        self.inflight_bytes = 0;
        self.mem.quiesce();
        for slot in self.links.iter_mut() {
            if let Some(tx) = slot {
                let cfg = tx.config;
                tx.warm_reset(cfg);
            }
        }
        let _ = self.wc.fence(); // drop any residue held in WC buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{symmetric, Route};

    const TCC: LinkId = LinkId(2);

    /// A node configured like paper Fig. 3 Node0: local DRAM 64 KB at
    /// global 0x1_0000, remote window above it out the TCC link.
    fn tcc_node() -> Node {
        let mut n = Node::new(NodeId(0), 1 << 20, UarchParams::shanghai());
        n.nb.addr_map.add_dram(0x1_0000, 0x2_0000, NodeId(0)).unwrap();
        n.nb.addr_map
            .add_mmio(0x2_0000, 0x10_0000, NodeId(0), TCC)
            .unwrap();
        n.nb.routes.set(NodeId(0), symmetric(Route::SelfRoute));
        n.mtrrs.program(0x1_0000, 0x2_0000, MemType::Uncacheable);
        n.mtrrs
            .program(0x2_0000, 0x10_0000, MemType::WriteCombining);
        n.attach_link(TCC, LinkConfig::PROTOTYPE, 7);
        n
    }

    #[test]
    fn remote_wc_store_emits_packet_on_line_fill() {
        let mut n = tcc_node();
        let mut actions = Vec::new();
        for i in 0..8u64 {
            let o = n.store(SimTime::ZERO, 0x2_0000 + i * 8, &[i as u8; 8]);
            actions.extend(o.actions);
        }
        let pkts: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::PacketOut { packet, arrival, .. } => Some((packet, *arrival)),
                _ => None,
            })
            .collect();
        assert_eq!(pkts.len(), 1, "one full-line packet");
        assert_eq!(pkts[0].0.data.len(), 64);
        assert_eq!(pkts[0].0.addr(), Some(0x2_0000));
        // Arrival ≈ wc_flush(5) + nb_tx(20) + ser(~22.7) + hop(50) ≈ 98 ns
        // (plus issue-rate time for 64 B at 12.8 GB/s = 5 ns).
        let ns = pkts[0].1.nanos();
        assert!((ns - 103.0).abs() < 3.0, "arrival = {ns} ns");
    }

    #[test]
    fn local_uc_store_commits_to_dram() {
        let mut n = tcc_node();
        let o = n.store(SimTime::ZERO, 0x1_0040, &[9u8; 8]);
        match &o.actions[..] {
            [Action::LocalCommit { offset, visible }] => {
                assert_eq!(*offset, 0x40);
                assert!(visible.nanos() > 0.0);
                assert_eq!(n.mem.peek(0x40, 8), &[9u8; 8]);
            }
            other => panic!("unexpected actions {other:?}"),
        }
    }

    #[test]
    fn partial_line_needs_fence() {
        let mut n = tcc_node();
        let o = n.store(SimTime::ZERO, 0x2_0000, &[1u8; 8]);
        assert!(o.actions.is_empty(), "held in WC buffer");
        let f = n.sfence(SimTime(100_000));
        let pkts = f
            .actions
            .iter()
            .filter(|a| matches!(a, Action::PacketOut { .. }))
            .count();
        assert_eq!(pkts, 1);
        assert!(f.retire >= SimTime(100_000) + UarchParams::shanghai().sfence_drain);
    }

    #[test]
    fn delivery_lands_in_dram_with_bridge_latency() {
        let mut n = tcc_node();
        let pkt = Packet::posted_write(0x1_0100, Bytes::from(vec![0x5A; 64]));
        let acts = n.deliver(SimTime::ZERO, TCC, pkt, false).unwrap();
        match &acts[..] {
            [Action::LocalCommit { offset, visible }] => {
                assert_eq!(*offset, 0x100);
                // nb_rx(20) + DRAM ser(~6) + commit(10) ≈ 36 ns.
                assert!((visible.nanos() - 36.0).abs() < 3.0, "{visible}");
                assert_eq!(n.mem.peek(0x100, 64), &[0x5A; 64]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn uc_poll_times_and_reads() {
        let mut n = tcc_node();
        n.mem.poke(0x200, &[0xEE; 8]);
        let (data, done) = n.uc_poll(SimTime::ZERO, 0x200, 8);
        assert_eq!(data, vec![0xEE; 8]);
        assert_eq!(done, SimTime(70_000), "one UC read round trip");
    }

    #[test]
    fn streaming_converges_to_wire_rate() {
        // 1 MB weakly-ordered stream: retire-rate far above capacity must
        // converge to the link rate (~2.82 GB/s goodput for 64 B packets).
        let mut n = tcc_node();
        let total: u64 = 1 << 20;
        let mut now = SimTime::ZERO;
        let mut retire = SimTime::ZERO;
        for i in 0..total / 64 {
            let addr = 0x2_0000 + (i * 64) % 0x4_0000; // reuse window
            let o = n.store(now, addr, &[0u8; 64]);
            now = o.issued;
            retire = o.retire;
        }
        let rate = total as f64 / (retire.picos() as f64 / 1e12) / 1e6;
        // Above link goodput because the tail sits in buffers, but below
        // absorb rate; with capacity 256 KB and 1 MB sent the inflation is
        // bounded by ~33%.
        assert!(rate > 2700.0 && rate < 4000.0, "rate = {rate:.0} MB/s");
    }

    #[test]
    fn short_burst_absorbed_at_absorb_rate() {
        // 128 KB fits in the 256 KB absorption window: the sender-side
        // retire rate is the absorb rate (~5.5 GB/s), not the link rate —
        // the Fig. 6 artifact.
        let mut n = tcc_node();
        let total: u64 = 128 << 10;
        let mut now = SimTime::ZERO;
        let mut retire = SimTime::ZERO;
        for i in 0..total / 64 {
            let o = n.store(now, 0x2_0000 + i * 64, &[0u8; 64]);
            now = o.issued;
            retire = o.retire;
        }
        let rate = total as f64 / (retire.picos() as f64 / 1e12) / 1e6;
        assert!((rate - 5500.0).abs() < 300.0, "rate = {rate:.0} MB/s");
    }

    #[test]
    fn quiesce_resets_pipeline() {
        let mut n = tcc_node();
        for i in 0..1000u64 {
            n.store(SimTime::ZERO, 0x2_0000 + i * 64, &[0u8; 64]);
        }
        n.quiesce();
        let o = n.store(SimTime::ZERO, 0x2_0000, &[0u8; 64]);
        assert!(o.retire.nanos() < 100.0, "fresh pipeline");
    }
}
