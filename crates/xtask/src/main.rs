//! Workspace automation. `cargo xtask lint` is the single entry point CI
//! and developers run before merging:
//!
//! 1. **forbid-unsafe** — every non-bench crate's `lib.rs` must carry
//!    `#![forbid(unsafe_code)]` (the bench crate is exempt: its counting
//!    global allocator needs `unsafe impl GlobalAlloc`).
//! 2. **hot-path-alloc** — the functions PR 1 made allocation-free stay
//!    allocation-free *at the source level*: their bodies may not contain
//!    `Vec::new`, `vec![`, `with_capacity`, `to_vec`, `Box::new`,
//!    `collect()`, `format!` or `to_string`. This catches regressions at
//!    review time instead of waiting for the counting-allocator test.
//! 3. **clippy** — `cargo clippy --workspace --all-targets -- -D warnings`,
//!    which also promotes the `clippy.toml` disallowed-methods (wallclock
//!    reads outside the bench harness) to hard errors.
//!
//! `cargo xtask lint --no-clippy` runs only the source scans (fast, no
//! compilation).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Functions whose bodies must stay allocation-free at the source level.
/// (file relative to the workspace root, function name)
const HOT_FUNCTIONS: &[(&str, &str)] = &[
    ("crates/opteron/src/node.rs", "fn store"),
    ("crates/opteron/src/node.rs", "fn store_burst"),
    ("crates/opteron/src/node.rs", "fn sfence"),
    ("crates/opteron/src/node.rs", "fn emit_flush"),
    ("crates/opteron/src/node.rs", "fn emit_runs"),
    ("crates/opteron/src/node.rs", "fn sq_headroom"),
    ("crates/firmware/src/machine.rs", "fn propagate"),
    ("crates/ht/src/link.rs", "fn send_into"),
    ("crates/ht/src/link.rs", "fn pump_into"),
    ("crates/core/src/engine.rs", "fn pump_port"),
    ("crates/core/src/engine.rs", "fn on_arrive"),
    ("crates/core/src/engine.rs", "fn drain_inbox"),
    ("crates/core/src/engine.rs", "fn send_arrive"),
    ("crates/core/src/engine.rs", "fn run_epoch"),
    ("crates/fabric/src/event.rs", "fn insert"),
    ("crates/fabric/src/event.rs", "fn find_min"),
    ("crates/fabric/src/event.rs", "fn pop_before"),
    ("crates/msglib/src/ring.rs", "fn send"),
    ("crates/msglib/src/ring.rs", "fn recv_into"),
    ("crates/msglib/src/channel.rs", "fn send"),
    ("crates/msglib/src/channel.rs", "fn recv_into"),
];

/// Substrings that indicate a heap allocation (or an allocation-returning
/// conversion) inside a hot function body.
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "with_capacity(",
    ".to_vec(",
    "Box::new(",
    ".collect(",
    "format!(",
    ".to_string(",
    "String::new(",
    "String::from(",
];

/// Crates exempt from `#![forbid(unsafe_code)]`: bench installs a counting
/// `GlobalAlloc` for the zero-allocation regression tests.
const UNSAFE_EXEMPT: &[&str] = &["bench"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("lint") => {
            let clippy = !args.iter().any(|a| a == "--no-clippy");
            lint(clippy)
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--no-clippy]");
            ExitCode::FAILURE
        }
    }
}

fn lint(run_clippy: bool) -> ExitCode {
    let root = workspace_root();
    let mut failures = Vec::new();
    failures.extend(check_forbid_unsafe(&root));
    failures.extend(check_hot_path_allocs(&root));

    if failures.is_empty() {
        println!("xtask lint: forbid-unsafe ok, hot-path-alloc ok");
    } else {
        for f in &failures {
            eprintln!("xtask lint: {f}");
        }
        return ExitCode::FAILURE;
    }

    if run_clippy {
        let status = Command::new(env!("CARGO"))
            .current_dir(&root)
            .args([
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ])
            .status()
            .expect("spawn cargo clippy");
        if !status.success() {
            eprintln!("xtask lint: clippy failed");
            return ExitCode::FAILURE;
        }
        println!("xtask lint: clippy ok");
    }
    ExitCode::SUCCESS
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Every `crates/*/src/lib.rs` (bench exempt) must forbid unsafe code.
fn check_forbid_unsafe(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
        .expect("read crates/")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for dir in entries {
        let name = dir.file_name().unwrap().to_string_lossy().into_owned();
        if UNSAFE_EXEMPT.contains(&name.as_str()) {
            continue;
        }
        let lib = dir.join("src/lib.rs");
        if !lib.is_file() {
            continue; // bin-only crate (xtask itself)
        }
        let text = std::fs::read_to_string(&lib).expect("read lib.rs");
        if !text.contains("#![forbid(unsafe_code)]") {
            out.push(format!(
                "{}: missing #![forbid(unsafe_code)]",
                lib.strip_prefix(root).unwrap().display()
            ));
        }
    }
    out
}

fn check_hot_path_allocs(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for &(file, func) in HOT_FUNCTIONS {
        let path = root.join(file);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {file}: {e}"));
        match function_body(&text, func) {
            Some((start_line, body)) => {
                for (off, line) in body.lines().enumerate() {
                    let code = strip_comment(line);
                    for pat in ALLOC_PATTERNS {
                        if code.contains(pat) {
                            out.push(format!(
                                "{file}:{}: `{pat}` inside hot function `{func}` \
                                 (see docs/hot-path.md)",
                                start_line + off
                            ));
                        }
                    }
                }
            }
            None => out.push(format!(
                "{file}: hot function `{func}` not found — update xtask's HOT_FUNCTIONS"
            )),
        }
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Extract the body of the first function whose signature line contains
/// `func` as a word-bounded match, by brace counting from its opening
/// brace. Returns (1-based line of the signature, body text).
fn function_body<'a>(text: &'a str, func: &str) -> Option<(usize, &'a str)> {
    let mut search_from = 0;
    loop {
        let rel = text[search_from..].find(func)?;
        let at = search_from + rel;
        // Word-bounded on the right: `fn store` must not match `fn store_burst`.
        let after = text[at + func.len()..].chars().next();
        if !matches!(after, Some('(') | Some('<') | Some(' ')) {
            search_from = at + func.len();
            continue;
        }
        let sig_line = text[..at].lines().count();
        let open = at + text[at..].find('{')?;
        let mut depth = 0usize;
        for (i, ch) in text[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((sig_line, &text[open..open + i + 1]));
                    }
                }
                _ => {}
            }
        }
        return None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
impl Foo {
    pub fn store(&mut self) -> u32 {
        let x = { 1 + 2 };
        x
    }

    pub fn store_burst(&mut self) {
        let v = Vec::new();
        drop(v);
    }
}
";

    #[test]
    fn body_extraction_is_word_bounded() {
        let (line, body) = function_body(SAMPLE, "fn store").unwrap();
        assert_eq!(line, 2);
        assert!(body.contains("1 + 2"));
        assert!(!body.contains("Vec::new"));
    }

    #[test]
    fn nested_braces_are_balanced() {
        let (_, body) = function_body(SAMPLE, "fn store_burst").unwrap();
        assert!(body.contains("Vec::new"));
        assert!(!body.contains("impl"));
    }

    #[test]
    fn comments_do_not_trip_the_scan() {
        assert_eq!(
            strip_comment("let x = 1; // Vec::new( in a comment"),
            "let x = 1; "
        );
    }

    #[test]
    fn workspace_hot_functions_are_present_and_clean() {
        let root = workspace_root();
        let failures = check_hot_path_allocs(&root);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn workspace_crates_forbid_unsafe() {
        let root = workspace_root();
        let failures = check_forbid_unsafe(&root);
        assert!(failures.is_empty(), "{failures:#?}");
    }
}
