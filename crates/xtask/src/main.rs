//! Workspace automation. `cargo xtask lint` is the single entry point CI
//! and developers run before merging:
//!
//! 1. **forbid-unsafe** — every non-bench crate's `lib.rs` must carry
//!    `#![forbid(unsafe_code)]` (the bench crate is exempt: its counting
//!    global allocator needs `unsafe impl GlobalAlloc`).
//! 2. **tcc-analyze** — the seven AST-level passes (alloc-reachability,
//!    lock-order, time-arith, determinism, panic-freedom, epoch-phase,
//!    linear-resource; see `docs/static-analysis.md`). Hot functions
//!    carry `#[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]` in-place,
//!    resource-shaped functions carry `tcc_linear(kind)` over the
//!    `tcc_acquires`/`tcc_releases` anchors, the analyzer checks them
//!    *transitively* over the shared call graph (flow-sensitively over
//!    per-function CFGs for the linear pass), and baseline guards fail
//!    the gate if annotations are ever deleted instead of migrated — or
//!    if a pass goes blind (phase-rank or linear-checked count collapse,
//!    required-crate coverage loss).
//! 3. **clippy** — `cargo clippy --workspace --all-targets -- -D warnings`,
//!    which also promotes the `clippy.toml` disallowed-methods (wallclock
//!    reads outside the bench harness) to hard errors.
//!
//! Every run writes `LINT_report.json` (schema-stable, uploaded as a CI
//! artifact). `--no-clippy` skips step 3 (fast, no compilation); `--json`
//! prints the report to stdout instead of human-readable diagnostics;
//! `--quiet` suppresses per-diagnostic output and prints only the verdict;
//! `--timings` injects a wall clock into the analyzer so the report's
//! `timings_ms` carries per-pass durations and the run enforces
//! [`ANALYZE_BUDGET_MS`] (without the flag timings stay `null`, keeping
//! the committed report byte-stable).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// The number of `#[cfg_attr(lint, tcc_no_alloc)]` annotations the
/// workspace carries (21 when the old HOT_FUNCTIONS table was migrated
/// to in-place attributes; 33 after the mailbox/arena/ladder hot paths
/// were annotated; 40 after the flat fast lane and the auto queue
/// backend landed). The count may only grow: a drop means someone
/// deleted an annotation rather than migrating it.
const NO_ALLOC_BASELINE: usize = 40;

/// The number of `tcc_no_panic` annotations the workspace carries (31
/// when the panic-freedom pass landed: the no-alloc hot paths that are
/// also panic-checked plus the executive drivers; 39 after the
/// flat-lane dispatch, the sequential executive and the auto backend
/// were annotated). Guarded like [`NO_ALLOC_BASELINE`]: the count may
/// only grow.
const NO_PANIC_BASELINE: usize = 39;

/// The epoch-phase pass must keep ranking at least this many in-scope
/// engine functions (21 when the pass landed). A collapse below the
/// floor means the pass went blind (e.g. the anchor patterns no longer
/// match the engine's rings) and its clean verdict is vacuous.
const PHASE_RANKED_FLOOR: usize = 8;

/// The linear-resource pass must keep walking at least this many
/// `tcc_linear`-annotated functions (16 when the pass landed: the
/// credit, rxbuf, srctag, arena-handle and batch lifecycles). Guarded
/// like [`PHASE_RANKED_FLOOR`]: a collapse means the annotations were
/// deleted or the pass stopped seeing them, making its verdict vacuous.
const RESOURCE_BASELINE: usize = 16;

/// Crates the linear-resource pass must keep covering (at least one
/// checked function each): the paper's resource lifecycles span the
/// wire protocol (ht), the event kernel (fabric), the shm transport
/// (msglib) and the executive (core).
const RESOURCE_CRATES: &[&str] = &["core", "fabric", "ht", "msglib"];

/// Wall-time budget for one full analyzer run (all passes plus the
/// shared call-graph build), enforced only under `--timings`. The run
/// takes well under a second on a laptop; the budget is a regression
/// tripwire, not a tight bound.
const ANALYZE_BUDGET_MS: u64 = 5_000;

/// Crates exempt from `#![forbid(unsafe_code)]`: bench installs a counting
/// `GlobalAlloc` for the zero-allocation regression tests.
const UNSAFE_EXEMPT: &[&str] = &["bench"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("lint") => {
            let opts = Opts {
                clippy: !args.iter().any(|a| a == "--no-clippy"),
                json: args.iter().any(|a| a == "--json"),
                quiet: args.iter().any(|a| a == "--quiet"),
                timings: args.iter().any(|a| a == "--timings"),
            };
            lint(&opts)
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--no-clippy] [--json] [--quiet] [--timings]");
            ExitCode::FAILURE
        }
    }
}

struct Opts {
    clippy: bool,
    json: bool,
    quiet: bool,
    timings: bool,
}

/// Monotonic nanoseconds since the first call, injected into the
/// analyzer as its [`tcc_analyze::PassClock`]. The analyzer crate cannot
/// read wall time itself (its own determinism pass and the workspace
/// clippy.toml ban `Instant::now`), so timing lives here, behind the
/// `--timings` flag, where the clippy exception is explicit.
#[allow(clippy::disallowed_methods)]
fn clock_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(Instant::now().duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

fn lint(opts: &Opts) -> ExitCode {
    let root = workspace_root();
    let mut failed = false;

    let unsafe_failures = check_forbid_unsafe(&root);
    if !unsafe_failures.is_empty() {
        for f in &unsafe_failures {
            eprintln!("xtask lint: {f}");
        }
        failed = true;
    }

    match run_analyzer(&root, opts) {
        Ok(clean) => failed |= !clean,
        Err(e) => {
            eprintln!("xtask lint: analyzer failed: {e}");
            failed = true;
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    if !opts.json && !opts.quiet {
        println!("xtask lint: forbid-unsafe ok, tcc-analyze ok");
    }

    if opts.clippy {
        let status = Command::new(env!("CARGO"))
            .current_dir(&root)
            .args([
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ])
            .status()
            .expect("spawn cargo clippy");
        if !status.success() {
            eprintln!("xtask lint: clippy failed");
            return ExitCode::FAILURE;
        }
        if !opts.json && !opts.quiet {
            println!("xtask lint: clippy ok");
        }
    }
    if opts.quiet && !opts.json {
        println!("xtask lint: ok");
    }
    ExitCode::SUCCESS
}

/// Run the seven tcc-analyze passes, write `LINT_report.json` at the
/// workspace root, enforce the annotation baselines, the phase-rank and
/// linear-checked floors, and (under `--timings`) the wall-time budget.
/// Returns Ok(clean).
fn run_analyzer(root: &Path, opts: &Opts) -> Result<bool, String> {
    let ws = tcc_analyze::Workspace::load_root(root).map_err(|e| e.to_string())?;
    let clock: Option<tcc_analyze::PassClock> = opts.timings.then_some(clock_ns);
    let mut report = tcc_analyze::run_all_timed(&ws, clock);
    // Record the enforced floors in the artifact itself, so a report can
    // be audited without this source file next to it.
    report.baselines = vec![
        ("no_alloc", NO_ALLOC_BASELINE),
        ("no_panic", NO_PANIC_BASELINE),
        ("phase_ranked", PHASE_RANKED_FLOOR),
        ("linear_checked", RESOURCE_BASELINE),
    ];

    let json = report.to_json();
    std::fs::write(root.join("LINT_report.json"), &json)
        .map_err(|e| format!("write LINT_report.json: {e}"))?;
    if opts.json {
        print!("{json}");
    }

    let mut clean = report.clean();
    if !clean && !opts.json && !opts.quiet {
        for d in &report.diagnostics {
            eprintln!("xtask lint: {}", d.render());
        }
    }
    if report.no_alloc_annotations < NO_ALLOC_BASELINE {
        eprintln!(
            "xtask lint: tcc_no_alloc annotation count dropped below baseline \
             ({} < {NO_ALLOC_BASELINE}) — hot-path annotations must be migrated, \
             not deleted (docs/static-analysis.md)",
            report.no_alloc_annotations
        );
        clean = false;
    }
    if report.no_panic_annotations < NO_PANIC_BASELINE {
        eprintln!(
            "xtask lint: tcc_no_panic annotation count dropped below baseline \
             ({} < {NO_PANIC_BASELINE}) — hot-path annotations must be migrated, \
             not deleted (docs/static-analysis.md)",
            report.no_panic_annotations
        );
        clean = false;
    }
    if report.phase_ranked_functions < PHASE_RANKED_FLOOR {
        eprintln!(
            "xtask lint: epoch-phase pass ranked only {} in-scope function(s) \
             (< {PHASE_RANKED_FLOOR}) — the pass no longer recognises the engine's \
             phase machine, so its clean verdict is vacuous (docs/static-analysis.md)",
            report.phase_ranked_functions
        );
        clean = false;
    }
    if report.linear_checked_functions < RESOURCE_BASELINE {
        eprintln!(
            "xtask lint: linear-resource pass checked only {} function(s) \
             (< {RESOURCE_BASELINE}) — `tcc_linear` annotations must be migrated, \
             not deleted (docs/static-analysis.md)",
            report.linear_checked_functions
        );
        clean = false;
    }
    for required in RESOURCE_CRATES {
        if !report.linear_crates.iter().any(|c| c == required) {
            eprintln!(
                "xtask lint: linear-resource pass no longer covers crate `{required}` — \
                 the paper's resource lifecycles span {RESOURCE_CRATES:?} and each must \
                 keep at least one checked function (docs/static-analysis.md)"
            );
            clean = false;
        }
    }
    if opts.timings {
        let total_ns: u64 = report.pass_nanos.iter().map(|&(_, ns)| ns).sum();
        let total_ms = total_ns / 1_000_000;
        if !opts.json && !opts.quiet {
            for (name, ns) in &report.pass_nanos {
                println!("xtask lint: timing {name}: {:.3} ms", *ns as f64 / 1.0e6);
            }
            println!("xtask lint: timing total: {total_ms} ms (budget {ANALYZE_BUDGET_MS} ms)");
        }
        if total_ms > ANALYZE_BUDGET_MS {
            eprintln!(
                "xtask lint: analyzer wall time {total_ms} ms exceeds the \
                 {ANALYZE_BUDGET_MS} ms budget — a pass regressed"
            );
            clean = false;
        }
    }
    if !clean && !opts.json {
        eprintln!(
            "xtask lint: tcc-analyze found {} diagnostic(s); see LINT_report.json",
            report.diagnostics.len()
        );
    }
    Ok(clean)
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Every `crates/*/src/lib.rs` (bench exempt) must forbid unsafe code.
fn check_forbid_unsafe(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)
        .expect("read crates/")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for dir in entries {
        let name = dir.file_name().unwrap().to_string_lossy().into_owned();
        if UNSAFE_EXEMPT.contains(&name.as_str()) {
            continue;
        }
        let lib = dir.join("src/lib.rs");
        if !lib.is_file() {
            continue; // bin-only crate (xtask itself)
        }
        let text = std::fs::read_to_string(&lib).expect("read lib.rs");
        if !text.contains("#![forbid(unsafe_code)]") {
            out.push(format!(
                "{}: missing #![forbid(unsafe_code)]",
                lib.strip_prefix(root).unwrap().display()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_crates_forbid_unsafe() {
        let root = workspace_root();
        let failures = check_forbid_unsafe(&root);
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    fn analyzer_gate_is_clean_and_annotations_hold_the_baseline() {
        let root = workspace_root();
        let ws = tcc_analyze::Workspace::load_root(&root).expect("load workspace");
        let report = tcc_analyze::run_all(&ws);
        assert!(
            report.clean(),
            "{}",
            report
                .diagnostics
                .iter()
                .map(|d| d.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.no_alloc_annotations >= NO_ALLOC_BASELINE,
            "annotation count {} fell below the migrated baseline {NO_ALLOC_BASELINE}",
            report.no_alloc_annotations
        );
        assert!(
            report.no_panic_annotations >= NO_PANIC_BASELINE,
            "tcc_no_panic count {} fell below the baseline {NO_PANIC_BASELINE}",
            report.no_panic_annotations
        );
        assert!(
            report.phase_ranked_functions >= PHASE_RANKED_FLOOR,
            "epoch-phase pass ranked only {} functions (< {PHASE_RANKED_FLOOR})",
            report.phase_ranked_functions
        );
        assert!(
            report.linear_checked_functions >= RESOURCE_BASELINE,
            "linear-resource pass checked only {} functions (< {RESOURCE_BASELINE})",
            report.linear_checked_functions
        );
        for required in RESOURCE_CRATES {
            assert!(
                report.linear_crates.iter().any(|c| c == required),
                "linear-resource coverage lost crate `{required}` (have {:?})",
                report.linear_crates
            );
        }
    }

    #[test]
    fn report_json_has_the_gate_keys() {
        let root = workspace_root();
        let ws = tcc_analyze::Workspace::load_root(&root).expect("load workspace");
        let json = tcc_analyze::run_all(&ws).to_json();
        for key in [
            "\"schema\": 3",
            "\"clean\"",
            "\"no_alloc_annotations\"",
            "\"annotations\"",
            "\"pass_counts\"",
            "\"panic-freedom\"",
            "\"epoch-phase\"",
            "\"linear-resource\"",
            "\"phase_ranked_functions\"",
            "\"linear_checked_functions\"",
            "\"linear_crates\"",
            "\"timings_ms\": null",
            "\"baselines\"",
            "\"diagnostics\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn injected_clock_fills_per_pass_timings() {
        let root = workspace_root();
        let ws = tcc_analyze::Workspace::load_root(&root).expect("load workspace");
        let report = tcc_analyze::run_all_timed(&ws, Some(clock_ns));
        // One lap per pass plus the shared call-graph build.
        assert_eq!(
            report.pass_nanos.len(),
            tcc_analyze::report::PASSES.len() + 1
        );
        assert_eq!(report.pass_nanos[0].0, "callgraph");
        let json = report.to_json();
        assert!(!json.contains("\"timings_ms\": null"));
        assert!(json.contains("\"timings_ms\": {"));
    }
}
