//! # tcc-baseline — comparison interconnect models
//!
//! The interconnects the paper measures TCCluster against:
//!
//! * [`ib`] — a Mellanox ConnectX-like InfiniBand NIC (LogGP model
//!   calibrated to the published anchors the paper cites: 1.4 µs latency;
//!   200 / 1500 / 2500 MB/s at 64 B / 1 KB / 1 MB).
//! * [`ethernet`] — 10GbE through a kernel TCP stack (the "traditional
//!   technology" of the introduction).

#![forbid(unsafe_code)]

pub mod ethernet;
pub mod ib;

pub use ethernet::{EthParams, Ethernet};
pub use ib::{IbNic, IbParams};
