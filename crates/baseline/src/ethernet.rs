//! A 10-Gigabit Ethernet + kernel TCP stack model — the "traditional
//! technology" the paper's introduction positions TCCluster against.
//!
//! Much higher software overhead than the RDMA path: socket syscalls,
//! kernel protocol processing, interrupt-driven receive. Parameters are
//! in line with 2010-era measurements (~10 µs one-way latency through the
//! kernel stack, ~1.1 GB/s streaming after headers).

use tcc_fabric::time::Duration;

#[derive(Debug, Clone)]
pub struct EthParams {
    /// Syscall + TCP segmentation on the sender.
    pub o_send: Duration,
    /// NIC, wire, switch.
    pub latency: Duration,
    /// Interrupt, softirq, copy to user space.
    pub o_recv: Duration,
    /// Protocol efficiency: payload per wire byte (TCP/IP/Ethernet
    /// headers over 1500 B frames).
    pub efficiency: f64,
    /// Raw wire rate.
    pub bytes_per_sec: u64,
}

impl EthParams {
    pub fn tengig() -> Self {
        EthParams {
            o_send: Duration::from_nanos(3_000),
            latency: Duration::from_nanos(4_000),
            o_recv: Duration::from_nanos(3_000),
            efficiency: 1448.0 / 1538.0, // MSS over frame + overheads
            bytes_per_sec: 1_250_000_000,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Ethernet {
    pub params: EthParams,
}

impl Ethernet {
    pub fn tengig() -> Self {
        Ethernet {
            params: EthParams::tengig(),
        }
    }

    pub fn latency(&self, size: usize) -> Duration {
        let p = &self.params;
        let wire_bytes = (size as f64 / p.efficiency) as u64;
        let ser = Duration(tcc_fabric::channel::serialization_ps(
            wire_bytes.max(64),
            p.bytes_per_sec,
        ));
        p.o_send + p.latency + ser + p.o_recv
    }

    pub fn bandwidth_mb_s(&self, size: usize) -> f64 {
        let p = &self.params;
        let wire_bytes = (size as f64 / p.efficiency) as u64;
        let ser = tcc_fabric::channel::serialization_ps(wire_bytes.max(64), p.bytes_per_sec);
        // Per-message CPU cost limits small-message rates.
        let per_msg = ser.max(p.o_send.picos());
        size as f64 / (per_msg as f64 / 1e12) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_order_10us() {
        let e = Ethernet::tengig();
        let us = e.latency(64).micros();
        assert!((9.0..12.0).contains(&us), "64 B latency = {us:.1} us");
    }

    #[test]
    fn small_message_rate_cpu_bound() {
        let e = Ethernet::tengig();
        let bw = e.bandwidth_mb_s(64);
        assert!(bw < 30.0, "64 B streaming = {bw:.1} MB/s (CPU bound)");
    }

    #[test]
    fn large_message_rate_wire_bound() {
        let e = Ethernet::tengig();
        let bw = e.bandwidth_mb_s(1 << 20);
        assert!((1000.0..1250.0).contains(&bw), "1 MB: {bw:.0} MB/s");
    }
}
