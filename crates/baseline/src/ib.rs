//! A Mellanox ConnectX-like InfiniBand model — the comparison interconnect
//! of the paper's evaluation (§VI and [10]).
//!
//! The model is LogGP-shaped: a message costs sender overhead (MPI stack +
//! doorbell), a per-message NIC/fabric gap, wire serialisation, and
//! receiver overhead. Parameters are calibrated to the published numbers
//! the paper cites:
//!
//! * end-to-end latency ≈ 1.4 µs for minimal messages,
//! * MPI bandwidth ≈ 200 MB/s @64 B, ≈ 1500 MB/s @1 KB, ≈ 2500 MB/s @1 MB.

use tcc_fabric::time::Duration;

/// LogGP-style parameters of one NIC + fabric.
#[derive(Debug, Clone)]
pub struct IbParams {
    /// Software send overhead: MPI + verbs + doorbell write over PCIe/HTX.
    pub o_send: Duration,
    /// NIC processing + switch + wire propagation (the "L" term).
    pub latency: Duration,
    /// Receiver-side overhead: completion, cache-invalidate, MPI matching.
    pub o_recv: Duration,
    /// Per-message gap: the NIC's message issue rate limit (1/msg-rate).
    pub gap: Duration,
    /// Wire/DMA bandwidth in bytes per second (QDR 4x minus protocol).
    pub bytes_per_sec: u64,
}

impl IbParams {
    /// ConnectX QDR as published (Sur et al., HOTI'07; Mellanox data).
    pub fn connectx() -> Self {
        IbParams {
            o_send: Duration::from_nanos(160),
            latency: Duration::from_nanos(1060),
            o_recv: Duration::from_nanos(160),
            gap: Duration::from_nanos(300),
            bytes_per_sec: 2_800_000_000,
        }
    }
}

/// The modelled NIC.
#[derive(Debug, Clone)]
pub struct IbNic {
    pub params: IbParams,
}

impl IbNic {
    pub fn connectx() -> Self {
        IbNic {
            params: IbParams::connectx(),
        }
    }

    /// One-way end-to-end latency of a `size`-byte message.
    pub fn latency(&self, size: usize) -> Duration {
        let p = &self.params;
        let ser = Duration(tcc_fabric::channel::serialization_ps(
            size as u64,
            p.bytes_per_sec,
        ));
        p.o_send + p.latency + ser + p.o_recv
    }

    /// Streaming bandwidth in MB/s for `size`-byte messages. Per-message
    /// NIC gap and serialisation do not overlap (matching the measured
    /// MPI curve: 200 MB/s @64 B, 1500 @1 KB, approaching wire at 1 MB).
    pub fn bandwidth_mb_s(&self, size: usize) -> f64 {
        let p = &self.params;
        let ser = tcc_fabric::channel::serialization_ps(size as u64, p.bytes_per_sec);
        let per_msg = ser + p.gap.picos();
        size as f64 / (per_msg as f64 / 1e12) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_anchor_1_4us() {
        let nic = IbNic::connectx();
        let us = nic.latency(64).micros();
        assert!((us - 1.4).abs() < 0.05, "64 B latency = {us:.3} us");
    }

    #[test]
    fn bandwidth_anchors() {
        let nic = IbNic::connectx();
        let b64 = nic.bandwidth_mb_s(64);
        let b1k = nic.bandwidth_mb_s(1024);
        let b1m = nic.bandwidth_mb_s(1 << 20);
        assert!(
            (b64 - 200.0).abs() < 30.0,
            "64 B: {b64:.0} MB/s (paper: 200)"
        );
        assert!(
            (b1k - 1500.0).abs() < 200.0,
            "1 KB: {b1k:.0} MB/s (paper: 1500)"
        );
        assert!(
            (b1m - 2500.0).abs() < 350.0,
            "1 MB: {b1m:.0} MB/s (paper: 2500)"
        );
    }

    #[test]
    fn bandwidth_monotone_until_wire_bound() {
        let nic = IbNic::connectx();
        let mut prev = 0.0;
        for p in 6..=20 {
            let bw = nic.bandwidth_mb_s(1 << p);
            assert!(bw >= prev - 1e-9, "dip at 2^{p}");
            prev = bw;
        }
        assert!(prev < 2900.0, "asymptote is the wire: {prev:.0}");
    }

    #[test]
    fn latency_grows_with_size() {
        let nic = IbNic::connectx();
        assert!(nic.latency(4096) > nic.latency(64));
        // 1 KB is still dominated by the fixed path.
        assert!(nic.latency(1024).micros() < 2.0);
    }
}
