//! Fixture: a stale `tcc_panic_ok` escape hatch. The annotation asserts
//! "this function deliberately panics and a reviewer signed off" — but
//! nothing in or below the body can panic. A stale exemption is a
//! reviewed hole waiting for unreviewed code to fill it, so the pass
//! flags it for removal.

pub struct Gate {
    limit: u64,
}

impl Gate {
    /// The panic this once covered was refactored into a saturating
    /// clamp; the annotation stayed behind.
    #[cfg_attr(lint, tcc_panic_ok)]
    pub fn admit(&self, n: u64) -> u64 {
        n.min(self.limit)
    }
}
