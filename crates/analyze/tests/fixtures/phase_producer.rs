//! Fixture: producer-side work escaping into the post-barrier region.
//! `flush_mail` is producer-side (it publishes to the batch ring); the
//! epoch body calls it and *then* drains — so the publish from the
//! previous phase ordering leaks past B0 into the consumer interval.
//! The pass must see through the helper: the violation is only visible
//! interprocedurally.

pub struct Worker {
    mail_ring: BatchRing,
    outbox: Vec<u64>,
    scratch: Vec<u64>,
}

impl Worker {
    /// Producer-side helper: rank = {publish}.
    fn flush_mail(&mut self) {
        self.mail_ring.publish(&mut self.outbox);
    }

    /// BROKEN: publishes (via the helper) before draining in the same
    /// barrier interval. A consumer could observe the batch before its
    /// own inbound mail is drained — the handoff invariant is gone.
    pub fn epoch(&mut self) {
        self.flush_mail();
        self.mail_ring.take(&mut self.scratch);
    }
}
