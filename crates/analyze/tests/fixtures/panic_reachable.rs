//! Fixture: a hot-path function that reaches a panic through a helper.
//! The direct body looks innocent — the `.expect()` lives two calls
//! down — so only the interprocedural pass catches it. One worker
//! unwinding mid-epoch strands the others at the barrier; this is the
//! failure mode `tcc_no_panic` exists to keep out of the hot path.

pub struct Decoder {
    frames: Vec<u64>,
    cursor: usize,
}

impl Decoder {
    /// Annotated hot path: called once per delivered packet.
    #[cfg_attr(lint, tcc_no_panic)]
    pub fn hot_decode(&mut self) -> u64 {
        self.step()
    }

    fn step(&mut self) -> u64 {
        let f = self.frame().expect("frame present");
        self.cursor += 1;
        f
    }

    fn frame(&self) -> Option<u64> {
        self.frames.get(self.cursor).copied()
    }
}
