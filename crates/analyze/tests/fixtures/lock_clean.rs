//! Fixture: the current engine's locking discipline. Every mailbox guard
//! is either a single-statement temporary (released at the semicolon) or
//! dropped before the next acquisition, so the may-hold-while-acquiring
//! graph has no cycle even though both orders appear textually. The
//! batch-ring handoff shape (PR-6) adds `try_lock` slot guards scoped to
//! a block with an atomic counter store after release — also clean.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Shards {
    inboxes: Vec<Mutex<Vec<u64>>>,
}

impl Shards {
    pub fn send_arrive(&self, dst: usize, ev: u64) {
        // Temporary guard: dead by the end of the statement.
        self.inboxes[dst].lock().unwrap().push(ev);
    }

    pub fn drain_inbox(&self, src: usize, dst: usize) {
        let mut moved = Vec::new();
        {
            let mut guard = self.inboxes[src].lock().unwrap();
            std::mem::swap(&mut moved, &mut guard);
        }
        // The source guard's block has closed; this is not held-under.
        self.inboxes[dst].lock().unwrap().extend(moved);
    }
}

/// The epoch-batched SPSC handoff ring: slot guards are `try_lock`
/// temporaries scoped to a block, the head/tail counters are stored
/// *after* the guard drops, and publish/take never hold two slots at
/// once — no hold-while-acquiring edge exists.
pub struct RingShards {
    slots: Vec<Mutex<Vec<u64>>>,
    head: AtomicU64,
    tail: AtomicU64,
}

impl RingShards {
    pub fn publish(&self, staging: &mut Vec<u64>) {
        let head = self.head.load(Ordering::Relaxed);
        {
            let mut slot = self.slots[head as usize % self.slots.len()]
                .try_lock()
                .expect("SPSC slot uncontended");
            std::mem::swap(&mut *slot, staging);
        }
        self.head.store(head + 1, Ordering::Release);
    }

    pub fn take(&self, scratch: &mut Vec<u64>) {
        let tail = self.tail.load(Ordering::Relaxed);
        {
            let mut slot = self.slots[tail as usize % self.slots.len()]
                .try_lock()
                .expect("SPSC slot uncontended");
            std::mem::swap(&mut *slot, scratch);
        }
        self.tail.store(tail + 1, Ordering::Release);
    }
}
