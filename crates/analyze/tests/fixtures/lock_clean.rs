//! Fixture: the current engine's locking discipline. Every mailbox guard
//! is either a single-statement temporary (released at the semicolon) or
//! dropped before the next acquisition, so the may-hold-while-acquiring
//! graph has no cycle even though both orders appear textually.

use std::sync::Mutex;

pub struct Shards {
    inboxes: Vec<Mutex<Vec<u64>>>,
}

impl Shards {
    pub fn send_arrive(&self, dst: usize, ev: u64) {
        // Temporary guard: dead by the end of the statement.
        self.inboxes[dst].lock().unwrap().push(ev);
    }

    pub fn drain_inbox(&self, src: usize, dst: usize) {
        let mut moved = Vec::new();
        {
            let mut guard = self.inboxes[src].lock().unwrap();
            std::mem::swap(&mut moved, &mut guard);
        }
        // The source guard's block has closed; this is not held-under.
        self.inboxes[dst].lock().unwrap().extend(moved);
    }
}
