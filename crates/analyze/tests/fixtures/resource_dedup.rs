//! Fixture: diagnostic deduplication. One function is linear in two
//! kinds and leaks both at the same fall-through exit: the pass emits
//! one `resource.leak` per kind at the identical (file, line, code)
//! span, and `run_all` must collapse them to a single diagnostic.

pub struct Node {
    credits: u32,
    batches: u32,
}

impl Node {
    #[cfg_attr(lint, tcc_acquires(credit))]
    pub fn consume(&mut self) {
        self.credits -= 1;
    }

    #[cfg_attr(lint, tcc_acquires(batch))]
    pub fn publish(&mut self) {
        self.batches += 1;
    }
}

/// Leaks a credit and a batch on the same exit line.
#[cfg_attr(lint, tcc_linear(credit, batch))]
pub fn leak_both(node: &mut Node) {
    node.consume();
    node.publish();
}
