//! Fixture: a hot function whose own body is clean but which reaches an
//! allocation through a local helper. The pre-analyzer `cargo xtask lint`
//! substring scan only looked at the annotated function's body, so this
//! shape regressed silently; the call-graph pass must flag it.

pub struct SendQueue {
    depth: usize,
    scratch: [u8; 64],
}

impl SendQueue {
    /// Hot path: body contains no allocating construct at all.
    #[cfg_attr(lint, tcc_no_alloc)]
    pub fn issue(&mut self, len: usize) -> usize {
        self.depth += 1;
        self.stage(len)
    }

    /// The helper the substring scan never looked at.
    fn stage(&mut self, len: usize) -> usize {
        let shadow = self.scratch[..len].to_vec();
        shadow.len()
    }
}
