//! Fixture: the blessed panic-freedom shapes, mirroring the production
//! hot path. A `tcc_no_panic` function may call a reviewed
//! `tcc_panic_ok` funnel (the boundary stops traversal), and the two
//! deliberate exclusions — `assert!` family and indexing — are not
//! panic sites (reviewed invariant checks and bounds discipline belong
//! to the test layer, not this pass).

pub struct Ring {
    slots: Vec<u64>,
    head: usize,
    len: usize,
}

impl Ring {
    /// Hot path: panic-free because the only panic below it is the
    /// reviewed protocol funnel.
    #[cfg_attr(lint, tcc_no_panic)]
    pub fn hot_push(&mut self, v: u64) {
        if self.len == self.slots.len() {
            self.contended();
        }
        let h = self.head;
        debug_assert!(h < self.slots.len(), "head wraps before use");
        self.slots[h] = v;
        self.head = (h + 1) % self.slots.len();
        self.len += 1;
    }

    /// Deliberate protocol panic: a full ring means the SPSC contract
    /// was violated by the peer; continuing would corrupt the handoff.
    #[cfg_attr(lint, tcc_panic_ok)]
    fn contended(&self) -> ! {
        panic!("ring full: SPSC protocol violated");
    }
}
