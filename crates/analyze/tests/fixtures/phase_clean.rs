//! Fixture: the correct epoch machine, mirroring `run_worker` in
//! `crates/core/src/engine.rs`. Within each barrier interval the order
//! is drain -> minima -> stage -> publish; the loop back edge crosses
//! B0, so the next iteration's drain legally follows this iteration's
//! publish. Also pins the two deliberate non-findings: a driver calling
//! a complete epoch machine is neutral, and `Option::take` /
//! shard-touching setup code carry no rank.

pub struct Worker {
    mail_ring: BatchRing,
    queue: CalendarQueue,
    outbox: Vec<u64>,
    scratch: Vec<u64>,
    slot: Option<u64>,
}

impl Worker {
    /// The blessed shape: one full epoch per barrier interval.
    pub fn run(&mut self, epochs: u64) {
        for _ in 0..epochs {
            self.mail_ring.take(&mut self.scratch);
            let horizon = self.queue.peek_time();
            self.stage(horizon);
            self.mail_ring.publish(&mut self.outbox);
        }
    }

    fn stage(&mut self, horizon: Option<u64>) {
        if let Some(t) = horizon {
            self.outbox.push(t);
        }
    }

    /// A complete epoch machine spans consumer and producer ranks, so
    /// calling it twice back-to-back is neutral — the machine carries
    /// its own barrier.
    pub fn drive(&mut self) {
        self.run(1);
        self.run(1);
    }

    /// `Option::take` after `peek_time` is not a mailbox drain: the
    /// receiver chain is not ring-like.
    pub fn swap_slot(&mut self) -> Option<u64> {
        let horizon = self.queue.peek_time();
        let parked = self.slot.take();
        self.slot = horizon;
        parked
    }
}

pub struct Engine {
    shards: Vec<Shard>,
}

impl Engine {
    /// Setup code is unranked; wiring peer lists directly is fine.
    pub fn wire(&mut self, dst: usize, peer: u32) {
        self.shards[dst].out_peers.push(peer);
    }
}
