//! Fixture: `resource.double-release`. A tag handle is completed twice —
//! the second `complete` runs after every path already released the
//! handle, which on the real `TagTable` would steal whatever request
//! re-allocated the slot in between.

pub struct TagTable {
    in_flight: u32,
}

impl TagTable {
    #[cfg_attr(lint, tcc_acquires(srctag))]
    pub fn allocate(&mut self) -> u8 {
        self.in_flight += 1;
        0
    }

    #[cfg_attr(lint, tcc_releases(srctag))]
    pub fn complete(&mut self, tag: u8) -> u8 {
        self.in_flight -= 1;
        tag
    }
}

/// The retry path re-completes the tag it already completed.
#[cfg_attr(lint, tcc_linear(srctag))]
pub fn respond_twice(tags: &mut TagTable) {
    let tag = tags.allocate();
    tags.complete(tag);
    tags.complete(tag);
}
