//! Fixture: `resource.stale-ok` — the dual check that keeps the escape
//! hatch honest. `publish` once handed its batch to a peer shard and
//! earned `tcc_transfer_ok`; a later refactor made it balanced (the take
//! moved inline), so the excuse now covers nothing and must be flagged
//! before it silently excuses a *real* leak introduced later.

pub struct Ring {
    pending: u32,
}

impl Ring {
    #[cfg_attr(lint, tcc_acquires(batch))]
    pub fn publish_batch(&mut self) {
        self.pending += 1;
    }

    #[cfg_attr(lint, tcc_releases(batch))]
    pub fn take_batch(&mut self) {
        self.pending -= 1;
    }
}

/// Every path is balanced: the `tcc_transfer_ok` is stale.
#[cfg_attr(lint, tcc_linear(batch), tcc_transfer_ok)]
pub fn roundtrip(ring: &mut Ring) {
    ring.publish_batch();
    ring.take_batch();
}
