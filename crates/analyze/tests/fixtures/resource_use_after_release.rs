//! Fixture: `resource.use-after-release`. An arena handle is reclaimed
//! by `take`, then the stale handle value is used again — on the real
//! event arena that slot may already hold a different parked event, so
//! the late use aliases someone else's payload.

pub struct Arena {
    slots: Vec<u64>,
}

impl Arena {
    #[cfg_attr(lint, tcc_acquires(arena_handle))]
    pub fn park(&mut self, ev: u64) -> u32 {
        self.slots.push(ev);
        (self.slots.len() - 1) as u32
    }

    #[cfg_attr(lint, tcc_releases(arena_handle))]
    pub fn take(&mut self, handle: u32) -> u64 {
        self.slots[handle as usize]
    }
}

/// Reads through the handle after the slot was handed back.
#[cfg_attr(lint, tcc_linear(arena_handle))]
pub fn replay(arena: &mut Arena) -> u64 {
    let handle = arena.park(42);
    let ev = arena.take(handle);
    ev + u64::from(handle)
}
