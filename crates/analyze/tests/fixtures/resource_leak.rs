//! Fixture: `resource.leak`. The credit is consumed, then an early
//! return on the congestion branch exits without releasing it — exactly
//! the path shape fault-injection suites rarely drive. The tail path is
//! balanced, so the diagnostic must anchor to the early exit only.

pub struct CreditPool {
    available: u32,
}

pub enum SendError {
    Congested,
}

impl CreditPool {
    #[cfg_attr(lint, tcc_acquires(credit))]
    pub fn consume(&mut self) -> Result<(), SendError> {
        if self.available == 0 {
            return Err(SendError::Congested);
        }
        self.available -= 1;
        Ok(())
    }

    #[cfg_attr(lint, tcc_releases(credit))]
    pub fn release(&mut self) {
        self.available += 1;
    }
}

/// Consumes a credit, then bails on the congested branch still holding
/// it: the release lives only on the fall-through path.
#[cfg_attr(lint, tcc_linear(credit))]
pub fn transmit(pool: &mut CreditPool, congested: bool) -> Result<(), SendError> {
    pool.consume()?;
    if congested {
        return Err(SendError::Congested);
    }
    pool.release();
    Ok(())
}
