//! Fixture: phase-ranked code mutating a peer shard directly. Inside the
//! epoch loop every cross-shard write must go through the BatchRing
//! publish/take pair (or the inbox mutex); poking `shards[dst]` from a
//! ranked function races the owner's drain and breaks the single-writer
//! discipline the SPSC handoff is built on.

pub struct Engine {
    shards: Vec<Shard>,
    mail_ring: BatchRing,
    scratch: Vec<u64>,
}

impl Engine {
    /// BROKEN: ranked (it drains the mail ring), then writes straight
    /// into another shard's queue instead of publishing a batch.
    pub fn epoch(&mut self, dst: usize, ev: u64) {
        self.mail_ring.take(&mut self.scratch);
        self.shards[dst].queue.push(ev);
    }
}
