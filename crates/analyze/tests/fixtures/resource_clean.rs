//! Fixture: the blessed linear-resource shapes, mirroring production.
//! A `?` on the acquire itself keeps the error path clean
//! (validate-then-commit), a genuine handoff holds at exit under
//! `tcc_transfer_ok`, a drain loop releases more than it acquires
//! (net-releaser functions are legal), and a tracked handle paired
//! exactly once raises nothing.

pub struct CreditPool {
    available: u32,
}

pub enum SendError {
    Congested,
}

impl CreditPool {
    #[cfg_attr(lint, tcc_acquires(credit))]
    pub fn consume(&mut self) -> Result<(), SendError> {
        if self.available == 0 {
            return Err(SendError::Congested);
        }
        self.available -= 1;
        Ok(())
    }

    #[cfg_attr(lint, tcc_releases(credit))]
    pub fn release(&mut self) {
        self.available += 1;
    }
}

/// `consume()?` commits its acquire only on the success path, and that
/// path releases before falling through: both exits are balanced.
#[cfg_attr(lint, tcc_linear(credit))]
pub fn balanced(pool: &mut CreditPool) -> Result<(), SendError> {
    pool.consume()?;
    pool.release();
    Ok(())
}

/// A real handoff: the consumed credit rides out with the packet and
/// comes back via the far side's credit-return NOP.
// tcc_transfer_ok: the credit is owned by the in-flight packet once
// this returns; the receiver's NOP releases it elsewhere.
#[cfg_attr(lint, tcc_linear(credit), tcc_transfer_ok)]
pub fn send(pool: &mut CreditPool) -> Result<(), SendError> {
    pool.consume()?;
    Ok(())
}

/// Net releaser: a drain loop returning credits acquired elsewhere may
/// go arbitrarily negative without being a defect.
#[cfg_attr(lint, tcc_linear(credit))]
pub fn drain_returns(pool: &mut CreditPool, n: u32) {
    for _ in 0..n {
        pool.release();
    }
}

pub struct Arena {
    slots: Vec<u64>,
}

impl Arena {
    #[cfg_attr(lint, tcc_acquires(arena_handle))]
    pub fn park(&mut self, ev: u64) -> u32 {
        self.slots.push(ev);
        (self.slots.len() - 1) as u32
    }

    #[cfg_attr(lint, tcc_releases(arena_handle))]
    pub fn take(&mut self, handle: u32) -> u64 {
        self.slots[handle as usize]
    }
}

/// A tracked handle paired exactly once, with the payload (not the
/// handle) used afterwards.
#[cfg_attr(lint, tcc_linear(arena_handle))]
pub fn roundtrip(arena: &mut Arena) -> u64 {
    let handle = arena.park(7);
    let ev = arena.take(handle);
    ev * 2
}
