//! Fixture: the three determinism bans. A simulation that reads wallclock,
//! iterates a `HashMap`, or seeds randomness from entropy produces runs
//! that cannot be replayed — the PDES engine's conservative synchrony
//! proof assumes identical per-shard event orders across reruns.

use std::collections::HashMap;
use std::time::Instant;

pub struct Router {
    pub routes: HashMap<u32, u32>,
}

impl Router {
    /// Wallclock read inside simulation code: flagged.
    pub fn stamp(&self) -> Instant {
        Instant::now()
    }

    /// Hash-order iteration decides tie-breaks: flagged.
    pub fn first_hop(&self) -> u32 {
        let mut best = 0;
        for (_, hop) in self.routes.iter() {
            best = best.max(*hop);
        }
        best
    }

    /// Entropy-seeded randomness: flagged. (A `seed_from_u64` stream
    /// would be fine — replayable from the recorded seed.)
    pub fn jitter(&self) -> u64 {
        let r: u64 = rand::random();
        r
    }
}
