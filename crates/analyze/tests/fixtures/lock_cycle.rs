//! Fixture: the pre-PR-4 coherent-crossbar locking shape. `route` held a
//! per-port mailbox guard while taking the directory lock; `invalidate`
//! took them in the opposite order. Two threads running one of each
//! deadlock. PR 4's engine replaced this with single-statement temporary
//! guards (never holding one mailbox while taking another), which the
//! companion `lock_clean` fixture mirrors.

use std::sync::Mutex;

pub struct Crossbar {
    ports: Mutex<Vec<u64>>,
    directory: Mutex<Vec<u32>>,
}

impl Crossbar {
    pub fn route(&self, pkt: u64) {
        let mut port = self.ports.lock().unwrap();
        // Directory acquired while the port guard is still live.
        let dir = self.directory.lock().unwrap();
        port.push(pkt + dir.len() as u64);
    }

    pub fn invalidate(&self, line: u32) {
        let mut dir = self.directory.lock().unwrap();
        // Reverse order: port acquired under the directory guard.
        let port = self.ports.lock().unwrap();
        dir.push(line + port.len() as u32);
    }
}
