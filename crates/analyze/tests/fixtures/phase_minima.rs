//! Fixture: a mailbox drain after the horizon minimum has already been
//! computed. The minima are only a safe lower bound if every shard's
//! inbound mail is in its queue first; draining afterwards can surface
//! an event earlier than the published horizon — a causality violation
//! that shows up as nondeterministic ordering across thread counts.

pub struct Worker {
    mail_ring: BatchRing,
    queue: CalendarQueue,
    scratch: Vec<u64>,
}

impl Worker {
    /// BROKEN: peeks the horizon minimum, then drains mail that could
    /// carry an earlier timestamp.
    pub fn epoch(&mut self) {
        let horizon = self.queue.peek_time();
        self.mail_ring.take(&mut self.scratch);
        self.report(horizon);
    }

    fn report(&self, _h: Option<u64>) {}
}
