//! Fixture: unchecked arithmetic on picosecond values. `SimTime::MAX` is
//! the legal "never" sentinel, so a raw `+` on `.0`/`.picos()` wraps to a
//! small timestamp and silently reorders the event queue. Every operator
//! here must be flagged; the `checked_`/`saturating_` forms and the
//! newtype `impl Add` are the blessed alternatives.

pub struct SimTime(pub u64);
pub struct Duration(pub u64);

impl SimTime {
    pub fn picos(&self) -> u64 {
        self.0
    }

    /// Raw add on the inner picosecond counter: flagged.
    pub fn bump(&self, d: &Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

/// Raw multiply on a `.picos()` chain: flagged.
pub fn scale(t: &SimTime, factor: u64) -> u64 {
    t.picos() * factor
}

/// Raw subtract between two time-typed values: flagged.
pub fn gap(a: &SimTime, b: &SimTime) -> u64 {
    a.picos() - b.picos()
}

/// The blessed forms: no diagnostics.
pub fn safe(t: &SimTime, d: &Duration) -> SimTime {
    SimTime(t.picos().saturating_add(d.0).min(u64::MAX))
}
