//! Fixture tests: every pass must (a) flag its fixture — each diagnostic
//! code in this suite is pinned by a file that exists to trip it — and
//! (b) find the real workspace clean. The legacy-scan regression test
//! additionally proves the analyzer is strictly stronger than the
//! substring scan it replaced.

use std::path::Path;
use tcc_analyze::callgraph::CallGraph;
use tcc_analyze::{
    alloc, determinism, locks, panics, phase, resource, run_all, timearith, Workspace,
};

const ALLOC_TRANSITIVE: &str = include_str!("fixtures/alloc_transitive.rs");
const LOCK_CYCLE: &str = include_str!("fixtures/lock_cycle.rs");
const LOCK_CLEAN: &str = include_str!("fixtures/lock_clean.rs");
const TIME_OVERFLOW: &str = include_str!("fixtures/time_overflow.rs");
const NONDETERMINISM: &str = include_str!("fixtures/nondeterminism.rs");
const PHASE_PRODUCER: &str = include_str!("fixtures/phase_producer.rs");
const PHASE_MINIMA: &str = include_str!("fixtures/phase_minima.rs");
const PHASE_ESCAPE: &str = include_str!("fixtures/phase_escape.rs");
const PHASE_CLEAN: &str = include_str!("fixtures/phase_clean.rs");
const PANIC_REACHABLE: &str = include_str!("fixtures/panic_reachable.rs");
const PANIC_STALE_OK: &str = include_str!("fixtures/panic_stale_ok.rs");
const PANIC_CLEAN: &str = include_str!("fixtures/panic_clean.rs");
const RESOURCE_LEAK: &str = include_str!("fixtures/resource_leak.rs");
const RESOURCE_DOUBLE_RELEASE: &str = include_str!("fixtures/resource_double_release.rs");
const RESOURCE_USE_AFTER_RELEASE: &str = include_str!("fixtures/resource_use_after_release.rs");
const RESOURCE_STALE_OK: &str = include_str!("fixtures/resource_stale_ok.rs");
const RESOURCE_CLEAN: &str = include_str!("fixtures/resource_clean.rs");
const RESOURCE_DEDUP: &str = include_str!("fixtures/resource_dedup.rs");

fn ws(name: &str, src: &str) -> Workspace {
    Workspace::from_sources(&[(name, src)])
}

/// The linear-resource pass needs the shared call graph for anchor
/// resolution; fixture entry point.
fn resource_run(name: &str, src: &str) -> Vec<tcc_analyze::report::Diagnostic> {
    let ws = ws(name, src);
    let cg = CallGraph::build(&ws);
    resource::run_with(&ws, &cg)
}

#[test]
fn alloc_pass_catches_transitive_allocation() {
    let d = alloc::run(&ws("alloc_transitive.rs", ALLOC_TRANSITIVE));
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "alloc.transitive");
    assert_eq!(d[0].function, "SendQueue::issue");
    assert!(
        d[0].notes
            .iter()
            .any(|n| n.contains("SendQueue::issue -> SendQueue::stage")),
        "diagnostic must name the call path: {:#?}",
        d[0].notes
    );
}

/// The scan `cargo xtask lint` ran before this crate existed: extract the
/// annotated function's body by brace counting, then substring-match
/// allocation patterns. Reproduced here byte-for-byte in miniature to pin
/// the regression: it finds NOTHING in a hot function that allocates
/// through a helper, while the call-graph pass does.
#[test]
fn legacy_substring_scan_misses_what_the_graph_pass_catches() {
    const ALLOC_PATTERNS: &[&str] = &[
        "Vec::new(",
        "vec![",
        "with_capacity(",
        ".to_vec(",
        "Box::new(",
        ".collect(",
        "format!(",
        ".to_string(",
        "String::new(",
        "String::from(",
    ];
    fn function_body<'a>(text: &'a str, func: &str) -> Option<&'a str> {
        let at = text.find(func)?;
        let open = at + text[at..].find('{')?;
        let mut depth = 0usize;
        for (i, ch) in text[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&text[open..open + i + 1]);
                    }
                }
                _ => {}
            }
        }
        None
    }

    let body = function_body(ALLOC_TRANSITIVE, "fn issue").expect("hot fn present");
    let legacy_hits: Vec<&&str> = ALLOC_PATTERNS
        .iter()
        .filter(|p| {
            body.lines()
                .map(|l| l.split("//").next().unwrap_or(""))
                .any(|code| code.contains(**p))
        })
        .collect();
    assert!(
        legacy_hits.is_empty(),
        "the legacy scan must stay blind to the helper for this regression \
         test to mean anything, but it matched {legacy_hits:?}"
    );

    let d = alloc::run(&ws("alloc_transitive.rs", ALLOC_TRANSITIVE));
    assert_eq!(d.len(), 1, "the graph pass sees through the helper: {d:#?}");
    assert_eq!(d[0].code, "alloc.transitive");
}

#[test]
fn lock_pass_flags_the_pre_pr4_crossbar_cycle() {
    let d = locks::run(&ws("lock_cycle.rs", LOCK_CYCLE));
    assert!(!d.is_empty(), "reverse-order holds must cycle");
    assert!(d.iter().all(|x| x.code == "lock.cycle"), "{d:#?}");
    let rendered = format!("{d:#?}");
    assert!(
        rendered.contains("ports") && rendered.contains("directory"),
        "cycle report names both locks: {rendered}"
    );
}

#[test]
fn lock_pass_accepts_the_current_engine_discipline() {
    let d = locks::run(&ws("lock_clean.rs", LOCK_CLEAN));
    assert!(
        d.is_empty(),
        "temporary and block-scoped guards must not cycle: {d:#?}"
    );
}

#[test]
fn time_pass_flags_each_raw_operator_and_blesses_saturating_forms() {
    let d = timearith::run(&ws("time_overflow.rs", TIME_OVERFLOW));
    let codes: Vec<&str> = d.iter().map(|x| x.code.as_str()).collect();
    assert!(codes.contains(&"time.raw-add"), "{d:#?}");
    assert!(codes.contains(&"time.raw-mul"), "{d:#?}");
    assert!(codes.contains(&"time.raw-sub"), "{d:#?}");
    assert!(
        !d.iter().any(|x| x.function == "safe"),
        "saturating/min chains are blessed: {d:#?}"
    );
}

#[test]
fn determinism_pass_flags_wallclock_hash_iteration_and_entropy() {
    let d = determinism::run(&ws("nondeterminism.rs", NONDETERMINISM));
    let codes: Vec<&str> = d.iter().map(|x| x.code.as_str()).collect();
    assert!(codes.contains(&"det.wallclock"), "{d:#?}");
    assert!(codes.contains(&"det.hashmap-iter"), "{d:#?}");
    assert!(codes.contains(&"det.randomness"), "{d:#?}");
}

#[test]
fn phase_pass_flags_producer_work_after_the_barrier() {
    let d = phase::run(&ws("phase_producer.rs", PHASE_PRODUCER));
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "phase.producer-after-barrier");
    assert_eq!(d[0].function, "Worker::epoch");
    assert!(
        d[0].notes.iter().any(|n| n.contains("flush_mail")),
        "the note must name the producer-side helper: {:#?}",
        d[0].notes
    );
}

#[test]
fn phase_pass_flags_a_drain_after_horizon_minima() {
    let d = phase::run(&ws("phase_minima.rs", PHASE_MINIMA));
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "phase.drain-after-minima");
    assert_eq!(d[0].function, "Worker::epoch");
}

#[test]
fn phase_pass_flags_cross_shard_mutation_bypassing_the_mailbox() {
    let d = phase::run(&ws("phase_escape.rs", PHASE_ESCAPE));
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "phase.shard-escape");
    assert!(d[0].message.contains("shards[_]"), "{}", d[0].message);
}

#[test]
fn phase_pass_accepts_the_blessed_epoch_machine() {
    let d = phase::run(&ws("phase_clean.rs", PHASE_CLEAN));
    assert!(
        d.is_empty(),
        "correct order, neutral drivers, Option::take and setup wiring \
         must all stay quiet: {d:#?}"
    );
}

#[test]
fn panic_pass_sees_through_helpers_to_the_expect() {
    let d = panics::run(&ws("panic_reachable.rs", PANIC_REACHABLE));
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "panic.reachable");
    assert_eq!(d[0].function, "Decoder::hot_decode");
    assert!(
        d[0].notes
            .iter()
            .any(|n| n.contains("Decoder::hot_decode -> Decoder::step")),
        "diagnostic must name the call path: {:#?}",
        d[0].notes
    );
}

#[test]
fn panic_pass_flags_a_stale_escape_hatch() {
    let d = panics::run(&ws("panic_stale_ok.rs", PANIC_STALE_OK));
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "panic.stale-ok");
    assert_eq!(d[0].function, "Gate::admit");
}

#[test]
fn panic_pass_accepts_funnels_asserts_and_indexing() {
    let d = panics::run(&ws("panic_clean.rs", PANIC_CLEAN));
    assert!(
        d.is_empty(),
        "a reviewed funnel behind a no-panic fn, debug_assert! and \
         indexing are all blessed: {d:#?}"
    );
}

#[test]
fn resource_pass_flags_the_early_return_leak() {
    let d = resource_run("resource_leak.rs", RESOURCE_LEAK);
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "resource.leak");
    assert_eq!(d[0].function, "transmit");
    assert!(
        d[0].message.contains("credit"),
        "the leaked kind must be named: {}",
        d[0].message
    );
}

#[test]
fn resource_pass_flags_double_release() {
    let d = resource_run("resource_double_release.rs", RESOURCE_DOUBLE_RELEASE);
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "resource.double-release");
    assert_eq!(d[0].function, "respond_twice");
    assert!(d[0].message.contains("tag"), "{}", d[0].message);
}

#[test]
fn resource_pass_flags_use_after_release() {
    let d = resource_run("resource_use_after_release.rs", RESOURCE_USE_AFTER_RELEASE);
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "resource.use-after-release");
    assert_eq!(d[0].function, "replay");
    assert!(d[0].message.contains("handle"), "{}", d[0].message);
}

#[test]
fn resource_pass_flags_a_stale_transfer_ok() {
    let d = resource_run("resource_stale_ok.rs", RESOURCE_STALE_OK);
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].code, "resource.stale-ok");
    assert_eq!(d[0].function, "roundtrip");
}

#[test]
fn resource_pass_accepts_the_paired_lifecycles() {
    let d = resource_run("resource_clean.rs", RESOURCE_CLEAN);
    assert!(
        d.is_empty(),
        "?-shifted acquires, a justified handoff, a net-releasing drain \
         loop and a properly paired handle are all blessed: {d:#?}"
    );
}

/// Satellite: diagnostics with identical (file, line, code) collapse to
/// one in `run_all`, while the raw pass still sees one per kind.
#[test]
fn identical_span_diagnostics_dedup_in_run_all() {
    let raw = resource_run("resource_dedup.rs", RESOURCE_DEDUP);
    let leaks = raw.iter().filter(|d| d.code == "resource.leak").count();
    assert_eq!(leaks, 2, "one leak per kind before dedup: {raw:#?}");

    let report = run_all(&ws("resource_dedup.rs", RESOURCE_DEDUP));
    let deduped = report.by_pass("linear-resource").count();
    assert_eq!(deduped, 1, "{:#?}", report.diagnostics);
}

/// Satellite: `LINT_report.json` is byte-stable — two runs over the same
/// sources serialize to identical bytes, both on the clean workspace and
/// on a fixture that produces diagnostics.
#[test]
fn report_json_is_byte_identical_across_runs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("analyze lives two levels below the workspace root");
    let w = Workspace::load_root(root).expect("load workspace sources");
    assert_eq!(run_all(&w).to_json(), run_all(&w).to_json());

    let dirty = ws("resource_dedup.rs", RESOURCE_DEDUP);
    let a = run_all(&dirty).to_json();
    let b = run_all(&dirty).to_json();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// The real workspace passes every gate. This is the test that makes the
/// fixtures honest: the passes fire on the fixtures above and stay quiet
/// on ~90 production files, so they discriminate rather than spam.
#[test]
fn workspace_is_clean_under_all_seven_passes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("analyze lives two levels below the workspace root");
    let ws = Workspace::load_root(root).expect("load workspace sources");
    let report = run_all(&ws);
    assert!(
        report.clean(),
        "workspace must be diagnostic-free:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.no_alloc_annotations >= 33,
        "the annotated hot functions (21 from PR-1, 12 from the \
         mailbox/arena/ladder work) must keep their tcc_no_alloc \
         annotations (found {})",
        report.no_alloc_annotations
    );
    assert!(
        report.no_panic_annotations >= 30,
        "the hot path keeps its tcc_no_panic coverage (found {})",
        report.no_panic_annotations
    );
    assert!(
        report.phase_ranked_functions >= 4,
        "the epoch-phase pass must rank the engine's worker loop and \
         its helpers — {} ranked functions means the anchors went blind",
        report.phase_ranked_functions
    );
    assert!(
        report.linear_checked_functions >= 10,
        "the linear-resource pass must keep walking the annotated \
         lifecycles (found {})",
        report.linear_checked_functions
    );
    for required in ["core", "fabric", "ht", "msglib"] {
        assert!(
            report.linear_crates.iter().any(|c| c == required),
            "linear-resource coverage must span crate `{required}` (have {:?})",
            report.linear_crates
        );
    }
    assert!(report.files_scanned >= 80, "{}", report.files_scanned);
    // The engine's mailbox discipline specifically: scanned, and clean.
    assert!(
        ws.files
            .iter()
            .any(|f| f.path == "crates/core/src/engine.rs"),
        "engine must be in scope for the lock pass"
    );
    assert_eq!(report.by_pass("lock-order").count(), 0);
}
