//! Pass 4 — time-arithmetic overflow hygiene.
//!
//! Simulated time is picoseconds in a `u64`; at that resolution the
//! counter holds ~213 days, so overflow is a real failure mode for long
//! runs and for the `SimTime::MAX` "never" sentinel. The rule: raw
//! `+`/`-`/`*` (and the compound-assign forms) on a picosecond-valued
//! expression must instead use `checked_`/`saturating_`/`wrapping_`
//! methods or go through a blessed newtype operator (`SimTime +
//! Duration`, whose impl is itself checked by this pass at the `.0`
//! level).
//!
//! What counts as a *raw picosecond value* (an operand that triggers a
//! diagnostic) is deliberately strict, so index/count arithmetic nearby
//! is not flagged:
//!
//! - `.picos()` call chains,
//! - `.0` on a time-typed base (a `SimTime`/`Duration` field, local,
//!   parameter, or `self` inside an `impl SimTime`/`impl Duration`),
//! - a bare local previously bound from such a value (`let lo =
//!   k.at.0;` taints `lo`), where `.min`/`.max` preserve the unit and
//!   any other method call — or a scale-destroying operator (`>>`, `<<`,
//!   `/`, `%`, bitwise masks) — launders it back to a plain integer.
//!
//! Additionally any bare arithmetic inside a `SimTime(..)`/`Duration(..)`
//! constructor argument is flagged (`Duration(ns * 1_000)`): the result
//! *becomes* picoseconds, so the scaling itself must be checked.
//!
//! Production scope is `crates/fabric/` and `crates/core/` — where time
//! values live; fixtures are scanned whole.

use crate::lexer::{Tok, TokKind};
use crate::parse::{call_sites, is_keyword, CallKind};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::BTreeSet;

const TIME_TYPES: &[&str] = &["SimTime", "Duration"];
/// Methods that keep a raw picosecond value a picosecond value.
const PRESERVING: &[&str] = &["min", "max"];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    // Field names of time type anywhere in the workspace (`at: SimTime`).
    let time_fields: BTreeSet<&str> = ws
        .fields
        .iter()
        .filter(|f| TIME_TYPES.contains(&f.ty.split(' ').next().unwrap_or("")))
        .map(|f| f.name.as_str())
        .collect();

    let mut out = Vec::new();
    for f in &ws.fns {
        let file = ws.file(f);
        if f.is_test || !in_scope(ws, &file.path) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let toks = &file.toks;
        let ctx = FnCtx::build(f, toks, &time_fields);
        scan_ops(f, toks, body, &ctx, &file.path, &mut out);
        scan_ctor_args(f, toks, body, &file.path, &mut out);
    }
    // Constructor-arg and operand rules can both fire on one op; dedupe.
    out.sort_by(|a, b| (&a.file, a.line, &a.code).cmp(&(&b.file, b.line, &b.code)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.code == b.code);
    out
}

fn in_scope(ws: &Workspace, path: &str) -> bool {
    ws.synthetic || path.starts_with("crates/fabric/src/") || path.starts_with("crates/core/src/")
}

/// Per-function typing context: which names hold time newtypes, which
/// plain idents are tainted with raw picosecond values.
struct FnCtx<'a> {
    time_fields: &'a BTreeSet<&'a str>,
    /// Locals/params declared as `SimTime`/`Duration` (newtype level).
    time_vars: BTreeSet<String>,
    /// `self` is time-typed (inside `impl SimTime`/`impl Duration`).
    self_is_time: bool,
    /// Plain integers carrying picosecond values.
    tainted: BTreeSet<String>,
}

impl<'a> FnCtx<'a> {
    fn build(
        f: &crate::parse::FnDef,
        toks: &[Tok],
        time_fields: &'a BTreeSet<&'a str>,
    ) -> FnCtx<'a> {
        let mut ctx = FnCtx {
            time_fields,
            time_vars: BTreeSet::new(),
            self_is_time: f.qual.as_deref().is_some_and(|q| TIME_TYPES.contains(&q)),
            tainted: BTreeSet::new(),
        };
        // Parameters: `name : Type` pairs in the signature.
        let (ss, se) = f.sig;
        let mut k = ss;
        while k + 2 < se.min(toks.len()) {
            if toks[k].kind == TokKind::Ident
                && toks[k + 1].is(":")
                && type_head(&toks[k + 2..se]).is_some_and(|t| TIME_TYPES.contains(&t))
            {
                ctx.time_vars.insert(toks[k].text.clone());
            }
            k += 1;
        }
        // Forward pass over the body: typed lets and taint propagation.
        let (bs, be) = (f.body.unwrap().0, f.body.unwrap().1);
        let mut k = bs;
        while k < be.min(toks.len()) {
            if toks[k].is_ident("let") {
                // `let [mut] name [: Ty] = rhs ;`
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                if toks.get(n).map(|t| t.kind) == Some(TokKind::Ident) {
                    let name = toks[n].text.clone();
                    let mut m = n + 1;
                    if toks.get(m).is_some_and(|t| t.is(":")) {
                        if type_head(&toks[m + 1..be]).is_some_and(|t| TIME_TYPES.contains(&t)) {
                            ctx.time_vars.insert(name.clone());
                        }
                        while m < be && !toks[m].is("=") && !toks[m].is(";") {
                            m += 1;
                        }
                    }
                    if toks.get(m).is_some_and(|t| t.is("=")) {
                        let (rs, re) = rhs_range(toks, m + 1, be);
                        if rhs_is_time_newtype(&toks[rs..re]) {
                            ctx.time_vars.insert(name.clone());
                        } else if ctx.rhs_is_raw(&toks[rs..re]) {
                            ctx.tainted.insert(name);
                        }
                        k = re;
                        continue;
                    }
                }
            } else if toks[k].kind == TokKind::Ident
                && toks.get(k + 1).is_some_and(|t| t.is("="))
                && (k == bs || toks[k - 1].is(";") || toks[k - 1].is("{") || toks[k - 1].is("}"))
            {
                // Plain reassignment: `lo = lo.min(k.at.0);`
                let (rs, re) = rhs_range(toks, k + 2, be);
                if ctx.rhs_is_raw(&toks[rs..re]) {
                    ctx.tainted.insert(toks[k].text.clone());
                }
                k = re;
                continue;
            }
            k += 1;
        }
        ctx
    }

    /// Does this expression produce a raw picosecond value? Used for
    /// taint seeding: any raw source present, no scale-destroying
    /// binary operator at the top level.
    fn rhs_is_raw(&self, rhs: &[Tok]) -> bool {
        // Scale-destroying ops — and casts out of the u64 domain —
        // launder the whole binding.
        for (i, t) in rhs.iter().enumerate() {
            if matches!(t.text.as_str(), ">>" | "<<" | "/" | "%")
                || (matches!(t.text.as_str(), "&" | "|") && i > 0 && value_ending(&rhs[i - 1]))
            {
                return false;
            }
            if t.is_ident("as")
                && !matches!(
                    rhs.get(i + 1).map(|n| n.text.as_str()),
                    Some("u64") | Some("usize")
                )
            {
                return false;
            }
        }
        let mut i = 0usize;
        while i < rhs.len() {
            if self.raw_source_at(rhs, i) {
                return true;
            }
            i += 1;
        }
        false
    }

    /// Is there a raw picosecond source anchored at index `i`?
    fn raw_source_at(&self, toks: &[Tok], i: usize) -> bool {
        let t = &toks[i];
        // `.picos(` chain.
        if t.is_ident("picos")
            && i > 0
            && toks[i - 1].is(".")
            && toks.get(i + 1).is_some_and(|n| n.is("("))
        {
            return true;
        }
        // `.0` on a time-typed base.
        if t.kind == TokKind::Lit && t.text == "0" && i > 0 && toks[i - 1].is(".") {
            if let Some(base) = i.checked_sub(2).map(|b| &toks[b]) {
                let is_time_base = (base.text == "self" && self.self_is_time)
                    || self.time_vars.contains(&base.text)
                    || self.time_fields.contains(base.text.as_str());
                if is_time_base {
                    return true;
                }
            }
        }
        // A tainted plain ident, unless a non-preserving method call
        // launders it right away.
        if t.kind == TokKind::Ident && self.tainted.contains(&t.text) {
            if toks.get(i + 1).is_some_and(|n| n.is("."))
                && toks.get(i + 2).map(|n| n.kind) == Some(TokKind::Ident)
                && toks.get(i + 3).is_some_and(|n| n.is("("))
                && !PRESERVING.contains(&toks[i + 2].text.as_str())
            {
                return false;
            }
            return true;
        }
        false
    }

    /// Classify the operand ending just before token `op` (walking
    /// backwards): is it a raw picosecond value?
    fn left_is_raw(&self, toks: &[Tok], op: usize) -> bool {
        let Some(mut k) = op.checked_sub(1) else {
            return false;
        };
        loop {
            let t = &toks[k];
            match t.text.as_str() {
                ")" => {
                    // Method call or parenthesised group: find `(`.
                    let mut depth = 0i32;
                    while k > 0 {
                        let s = toks[k].text.as_str();
                        if s == ")" {
                            depth += 1;
                        } else if s == "(" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k -= 1;
                    }
                    // `name(..)` with a `.` before name → method call.
                    if k >= 2 && toks[k - 1].kind == TokKind::Ident && toks[k - 2].is(".") {
                        let m = toks[k - 1].text.as_str();
                        if m == "picos" {
                            return true;
                        }
                        if PRESERVING.contains(&m) {
                            // Unit preserved: classify the receiver.
                            if k < 3 {
                                return false;
                            }
                            k -= 3;
                            continue;
                        }
                        return false; // laundering method
                    }
                    return false; // parenthesised subexpression / call
                }
                _ if t.kind == TokKind::Lit => {
                    // `.0` tuple-field on a time base?
                    if t.text == "0" && k >= 2 && toks[k - 1].is(".") {
                        let base = &toks[k - 2];
                        if (base.text == "self" && self.self_is_time)
                            || self.time_vars.contains(&base.text)
                            || self.time_fields.contains(base.text.as_str())
                        {
                            return true;
                        }
                    }
                    return false;
                }
                _ if t.kind == TokKind::Ident && !is_keyword(&t.text) => {
                    return self.tainted.contains(&t.text);
                }
                _ => return false,
            }
        }
    }

    /// Classify the operand starting just after token `op` (walking
    /// forwards).
    fn right_is_raw(&self, toks: &[Tok], op: usize, end: usize) -> bool {
        let mut k = op + 1;
        if k >= end {
            return false;
        }
        // Leading unary borrow/deref/neg.
        while k < end && matches!(toks[k].text.as_str(), "&" | "*" | "-" | "mut") {
            k += 1;
        }
        if k >= end {
            return false;
        }
        let t = &toks[k];
        if t.kind == TokKind::Lit
            || t.text == "self"
            || (t.kind == TokKind::Ident && !is_keyword(&t.text))
        {
            // Walk the postfix chain forward; classify by its ending.
            let mut last_is_raw = if t.kind == TokKind::Ident {
                self.tainted.contains(&t.text)
            } else {
                false
            };
            let mut base_text = t.text.clone();
            let mut j = k + 1;
            loop {
                if toks.get(j).is_some_and(|n| n.is(".")) {
                    let Some(nxt) = toks.get(j + 1) else { break };
                    if nxt.kind == TokKind::Lit && nxt.text == "0" {
                        last_is_raw = (base_text == "self" && self.self_is_time)
                            || self.time_vars.contains(&base_text)
                            || self.time_fields.contains(base_text.as_str());
                        base_text = String::new();
                        j += 2;
                        continue;
                    }
                    if nxt.kind == TokKind::Ident {
                        if toks.get(j + 2).is_some_and(|n| n.is("(")) {
                            // Method call: picos → raw; min/max preserve;
                            // anything else launders.
                            let m = nxt.text.as_str();
                            last_is_raw = m == "picos" || (PRESERVING.contains(&m) && last_is_raw);
                            let close = crate::parse::skip_balanced(toks, j + 2, "(", ")");
                            base_text = String::new();
                            j = close;
                            continue;
                        }
                        // Plain field access.
                        base_text = nxt.text.clone();
                        last_is_raw = false;
                        j += 2;
                        continue;
                    }
                    break;
                }
                break;
            }
            // An explicit cast out of the u64-picosecond domain (`picos()
            // as f64`, `dt as i128`) launders: floats don't overflow and
            // i128/u128 have 64 bits of headroom. Only `as u64`/`as
            // usize` keep the value raw.
            if last_is_raw
                && toks.get(j).is_some_and(|n| n.is_ident("as"))
                && !matches!(
                    toks.get(j + 1).map(|n| n.text.as_str()),
                    Some("u64") | Some("usize")
                )
            {
                return false;
            }
            return last_is_raw;
        }
        false
    }
}

/// The first concrete type identifier of a type snippet (skipping `&`,
/// `mut`, lifetimes).
fn type_head(toks: &[Tok]) -> Option<&str> {
    for t in toks {
        match t.kind {
            TokKind::Punct if matches!(t.text.as_str(), "&" | "<") => continue,
            TokKind::Lifetime => continue,
            TokKind::Ident if matches!(t.text.as_str(), "mut" | "dyn") => continue,
            TokKind::Ident => return Some(&t.text),
            _ => return None,
        }
    }
    None
}

/// Token range of a `let`/assignment RHS: from `start` to the closing
/// `;` at nesting depth zero.
fn rhs_range(toks: &[Tok], start: usize, end: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut k = start;
    while k < end {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return (start, k);
                }
            }
            ";" if depth == 0 => return (start, k),
            _ => {}
        }
        k += 1;
    }
    (start, end)
}

/// Does the RHS (re)construct a time newtype (`SimTime(..)`,
/// `Duration::from_nanos(..)`, a bare time-typed var copy)?
fn rhs_is_time_newtype(rhs: &[Tok]) -> bool {
    rhs.first()
        .is_some_and(|t| TIME_TYPES.contains(&t.text.as_str()))
}

/// Can this token end a value expression (making a following `+`/`-`/`*`
/// a binary operator, not a unary one)?
fn value_ending(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Lit) && !is_keyword(&t.text)
        || matches!(t.text.as_str(), ")" | "]" | "self")
}

fn op_code(op: &str) -> Option<&'static str> {
    match op {
        "+" | "+=" => Some("time.raw-add"),
        "-" | "-=" => Some("time.raw-sub"),
        "*" | "*=" => Some("time.raw-mul"),
        _ => None,
    }
}

fn op_hint(code: &str) -> &'static str {
    match code {
        "time.raw-add" => "use `saturating_add`/`checked_add` or the SimTime/Duration `+` impl",
        "time.raw-sub" => "use `saturating_sub`/`checked_sub` (keep the debug_assert for intent)",
        _ => "use `saturating_mul`/`checked_mul`",
    }
}

/// Flag raw binary arithmetic whose operands are picosecond-valued.
fn scan_ops(
    f: &crate::parse::FnDef,
    toks: &[Tok],
    body: (usize, usize),
    ctx: &FnCtx,
    path: &str,
    out: &mut Vec<Diagnostic>,
) {
    let (bs, be) = body;
    for i in bs..be.min(toks.len()) {
        let t = &toks[i];
        let Some(code) = op_code(t.text.as_str()) else {
            continue;
        };
        // Binary context only: previous token must end a value.
        if i == 0 || !value_ending(&toks[i - 1]) {
            continue;
        }
        let left = ctx.left_is_raw(toks, i);
        let right = ctx.right_is_raw(toks, i, be);
        if left || right {
            out.push(Diagnostic {
                pass: "time-arith",
                code: code.to_string(),
                file: path.to_string(),
                line: t.line,
                function: f.display_name(),
                message: format!("raw `{}` on a picosecond-valued expression", t.text),
                notes: vec![op_hint(code).to_string()],
            });
        }
    }
}

/// Flag bare arithmetic inside `SimTime(..)` / `Duration(..)` ctor args.
fn scan_ctor_args(
    f: &crate::parse::FnDef,
    toks: &[Tok],
    body: (usize, usize),
    path: &str,
    out: &mut Vec<Diagnostic>,
) {
    for c in call_sites(toks, body) {
        if c.kind != CallKind::Path || !TIME_TYPES.contains(&c.name.as_str()) {
            continue;
        }
        // `SimTime::MAX` etc. produce Path "sites" only when followed by
        // `(`; call_sites guarantees that. Walk the argument group.
        let open = c.tok + 1;
        if !toks.get(open).is_some_and(|t| t.is("(")) {
            continue;
        }
        let close = crate::parse::skip_balanced(toks, open, "(", ")");
        for k in open + 1..close.saturating_sub(1) {
            let Some(code) = op_code(toks[k].text.as_str()) else {
                continue;
            };
            if !value_ending(&toks[k - 1]) {
                continue;
            }
            out.push(Diagnostic {
                pass: "time-arith",
                code: code.to_string(),
                file: path.to_string(),
                line: toks[k].line,
                function: f.display_name(),
                message: format!(
                    "raw `{}` inside a `{}(..)` constructor argument (result becomes picoseconds)",
                    toks[k].text, c.name
                ),
                notes: vec![op_hint(code).to_string()],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn raw_add_on_tuple_field_in_time_impl() {
        let d = diags(
            "
            impl SimTime {
                fn advance(self, rhs: Duration) -> SimTime { SimTime(self.0 + rhs.0) }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "time.raw-add");
    }

    #[test]
    fn saturating_form_is_clean() {
        let d = diags(
            "
            impl SimTime {
                fn advance(self, rhs: Duration) -> SimTime {
                    SimTime(self.0.saturating_add(rhs.0))
                }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn taint_flows_through_let_and_min() {
        let d = diags(
            "
            struct EventKey { at: SimTime }
            fn resize(keys: &[EventKey]) -> u64 {
                let mut lo = u64::MAX;
                let mut hi = 0u64;
                for k in keys.iter() {
                    lo = lo.min(k.at.0);
                    hi = hi.max(k.at.0);
                }
                let spread = hi - lo;
                2 * spread
            }
            ",
        );
        let codes: Vec<_> = d.iter().map(|x| x.code.as_str()).collect();
        assert!(codes.contains(&"time.raw-sub"), "{d:?}");
        assert!(codes.contains(&"time.raw-mul"), "{d:?}");
    }

    #[test]
    fn laundering_method_clears_taint() {
        let d = diags(
            "
            fn f(t: SimTime) -> u32 {
                let raw = t.0;
                let width = 63 - raw.leading_zeros();
                width + 1
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn index_arithmetic_is_not_flagged() {
        let d = diags(
            "
            struct EventKey { at: SimTime }
            fn bucket(k: &EventKey, shift: u32, nb: usize) -> usize {
                let day = (k.at.0 >> shift) as usize;
                day + 1 % nb
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ctor_argument_scaling_is_flagged() {
        let d = diags(
            "
            fn from_nanos(ns: u64) -> Duration { Duration(ns * 1_000) }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "time.raw-mul");
    }

    #[test]
    fn newtype_operator_use_is_blessed() {
        let d = diags(
            "
            fn schedule(now: SimTime, d: Duration) -> SimTime {
                now + d
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn picos_chain_is_raw() {
        let d = diags(
            "
            fn f(t: SimTime, d: u64) -> u64 { t.picos() + d }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "time.raw-add");
    }
}
