//! Pass 5 — panic-freedom.
//!
//! The determinism guarantee (bit-identical results across threads,
//! queue backends and mailbox kinds) dies silently if any hot-path
//! function can panic mid-epoch: one worker unwinds at a barrier, the
//! others hang, and the partial run looks like a scheduling bug. This
//! pass makes panic-reachability a lint failure for functions annotated
//! `#[cfg_attr(lint, tcc_no_panic)]` (seeded from the `tcc_no_alloc`
//! hot-path set), using the shared call graph from [`crate::callgraph`].
//!
//! A *panic site* is an explicit panicking construct: `.unwrap()` /
//! `.expect(..)` method calls, or the `panic!` / `unreachable!` / `todo!`
//! / `unimplemented!` macros. Two deliberate exclusions, reviewed here so
//! nobody re-litigates them per-diagnostic:
//!
//! * **`assert!` family** — an assert is a reviewed invariant check by
//!   construction (the author wrote the predicate and the message); the
//!   epoch protocol's own guard (`assert!(ring.publish(..))` in
//!   `publish_outboxes`) is exactly such a check and must stay.
//! * **Indexing / slice-length panics** — the hot path is index-heavy by
//!   design (`self.slots[h]`, `buf[1..9]`); flagging every `[]` would
//!   force blanket `tcc_panic_ok` annotations, the precise failure mode
//!   the escape hatch is meant to prevent. Bounds discipline is the
//!   type/test layer's job (miri + proptests), not this pass's.
//!
//! `#[cfg_attr(lint, tcc_panic_ok)]` marks a *reviewed* deliberate
//! protocol panic (the contended-slot panic in `handoff.rs`, the fatal
//! funnels): traversal stops there, the body is not classified, and a
//! justification comment is expected at the site. To keep the escape
//! hatch honest, `panic.stale-ok` flags any `tcc_panic_ok` function that
//! cannot actually reach a panic site — a stale annotation is a reviewed
//! hole waiting for code to fill it.

use crate::callgraph::CallGraph;
use crate::parse::{CallKind, CallSite};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::HashMap;

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Why a function counts as directly panicking: the offending construct
/// and its line.
struct PanicSite {
    what: String,
    line: u32,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    run_with(ws, &CallGraph::build(ws))
}

pub fn run_with(ws: &Workspace, cg: &CallGraph) -> Vec<Diagnostic> {
    // Classify direct panic sites for every live non-exempt function
    // (including tcc_panic_ok ones — the stale-ok check needs those).
    let mut direct: HashMap<usize, PanicSite> = HashMap::new();
    for &i in &cg.live {
        if ws.exempt(&ws.fns[i]) {
            continue;
        }
        for c in &cg.sites[i] {
            if let Some(what) = classify_panic(c) {
                direct.entry(i).or_insert(PanicSite { what, line: c.line });
                break;
            }
        }
    }

    // Reachability from each tcc_no_panic root. tcc_panic_ok functions
    // are boundaries: their (reviewed) panic neither counts as a target
    // nor is traversed through.
    let reviewed = |i: usize| ws.fns[i].has_marker("tcc_panic_ok");
    let enter = |i: usize| !ws.exempt(&ws.fns[i]) && !reviewed(i);
    let target = |i: usize| direct.contains_key(&i) && !reviewed(i);

    let mut out = Vec::new();
    for &root in &cg.live {
        let f = &ws.fns[root];
        if !f.has_marker("tcc_no_panic") || ws.exempt(f) || reviewed(root) {
            continue;
        }
        let Some(chain) = cg.find_path(root, target, enter) else {
            continue;
        };
        let bad = *chain.last().expect("chain holds at least the root");
        let site = &direct[&bad];
        let path: Vec<String> = chain.iter().map(|&i| ws.fns[i].display_name()).collect();
        let bad_fn = &ws.fns[bad];
        let mut notes = vec![format!(
            "{} in `{}` at {}:{}",
            site.what,
            bad_fn.display_name(),
            ws.file(bad_fn).path,
            site.line
        )];
        if bad != root {
            notes.push(format!("call path: {}", path.join(" -> ")));
        }
        notes.push(
            "restructure to a typed error or an invariant-carrying form; a \
             reviewed deliberate protocol panic can be exempted with \
             #[cfg_attr(lint, tcc_panic_ok)] + a justification comment — see \
             docs/static-analysis.md"
                .to_string(),
        );
        out.push(Diagnostic {
            pass: "panic-freedom",
            code: "panic.reachable".to_string(),
            file: ws.file(f).path.clone(),
            line: f.line,
            function: f.display_name(),
            message: if bad == root {
                format!("no-panic function can panic ({})", site.what)
            } else {
                format!(
                    "no-panic function reaches a panic through `{}`",
                    bad_fn.display_name()
                )
            },
            notes,
        });
    }

    // Stale escape hatches: a tcc_panic_ok function that cannot reach
    // any panic site (through any non-exempt code, boundaries included)
    // is a reviewed hole with nothing behind it.
    for &i in &cg.live {
        let f = &ws.fns[i];
        if ws.exempt(f) || !reviewed(i) {
            continue;
        }
        let reaches = cg
            .find_path(i, |n| direct.contains_key(&n), |n| !ws.exempt(&ws.fns[n]))
            .is_some();
        if !reaches {
            out.push(Diagnostic {
                pass: "panic-freedom",
                code: "panic.stale-ok".to_string(),
                file: ws.file(f).path.clone(),
                line: f.line,
                function: f.display_name(),
                message: "tcc_panic_ok on a function that cannot panic (stale escape hatch)"
                    .to_string(),
                notes: vec![
                    "remove the annotation — reviewed exemptions must cover a real, \
                     deliberate panic site"
                        .to_string(),
                ],
            });
        }
    }
    out
}

/// Is this call site itself an explicit panic construct?
fn classify_panic(c: &CallSite) -> Option<String> {
    match c.kind {
        CallKind::Macro if PANIC_MACROS.contains(&c.name.as_str()) => {
            Some(format!("`{}!` macro", c.name))
        }
        CallKind::Method if PANIC_METHODS.contains(&c.name.as_str()) => {
            Some(format!("`.{}()`", c.name))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn direct_unwrap_is_flagged() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_panic)]
            fn hot(x: Option<u32>) -> u32 { x.unwrap() }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "panic.reachable");
        assert!(d[0].message.contains("unwrap"));
    }

    #[test]
    fn transitive_panic_through_helper_names_the_path() {
        let d = diags(
            "
            impl W {
                #[cfg_attr(lint, tcc_no_panic)]
                fn hot(&mut self) { self.step(); }
                fn step(&mut self) { self.deeper(); }
                fn deeper(&self) { panic!(\"boom\"); }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "panic.reachable");
        assert!(d[0]
            .notes
            .iter()
            .any(|n| n.contains("W::hot -> W::step -> W::deeper")));
    }

    #[test]
    fn panic_ok_is_a_boundary() {
        let d = diags(
            "
            impl W {
                #[cfg_attr(lint, tcc_no_panic)]
                fn hot(&self) { self.guard(); }
                // Deliberate protocol panic, reviewed.
                #[cfg_attr(lint, tcc_panic_ok)]
                fn guard(&self) { self.inner.try_lock().expect(\"contended\"); }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stale_panic_ok_is_flagged() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_panic_ok)]
            fn fine(x: u32) -> u32 { x.wrapping_add(1) }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "panic.stale-ok");
    }

    #[test]
    fn panic_ok_reaching_a_panic_transitively_is_not_stale() {
        let d = diags(
            "
            impl W {
                #[cfg_attr(lint, tcc_panic_ok)]
                fn funnel_caller(&self) { self.funnel(); }
                #[cfg_attr(lint, tcc_panic_ok)]
                fn funnel(&self) -> ! { panic!(\"protocol violated\"); }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn asserts_and_indexing_are_not_panic_sites() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_panic)]
            fn hot(buf: &[u8], n: usize) -> u8 {
                assert!(n < buf.len(), \"caller-checked\");
                buf[n]
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
