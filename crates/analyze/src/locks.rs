//! Pass 3 — lock-order / deadlock detection.
//!
//! The sharded PDES engine keeps one `Mutex` per shard mailbox; the
//! pre-PR-4 coherent crossbar deadlocked ≥4×4 meshes precisely because a
//! sender held its local port lock while acquiring the peer's. This pass
//! makes that class of bug a lint failure instead of a hung simulation:
//!
//! 1. Every `.lock()` / `.try_lock()` call in scope is extracted and given
//!    a *lock identity*: the normalised receiver chain (`self.` stripped,
//!    index expressions abstracted to `[_]`, call arguments to `(_)`), so
//!    `self.inboxes[dst].0.lock()` and `self.inboxes[src].0.lock()` are
//!    the same lock *class* `inboxes[_].0`.
//! 2. A guard's *hold range* is computed: a let-bound guard lives to the
//!    end of its enclosing block (or an explicit `drop(guard)`); a
//!    temporary (`x.lock().unwrap().push(..)`) lives to the end of its
//!    statement.
//! 3. Acquisitions inside a hold range add may-hold-while-acquiring
//!    edges; calls inside a hold range add edges to everything the callee
//!    may transitively acquire (fixpoint over the workspace call graph).
//! 4. Any cycle in the resulting graph — including a self-edge, i.e. two
//!    locks of the same class nested — is reported as `lock.cycle`.
//!
//! Two instances of one lock class acquired in a nested fashion count as
//! a cycle on purpose: without a global order between instances (shard
//! ids, port sides) that shape deadlocks exactly like an A/B-B/A pair.
//!
//! In production runs the scope is the concurrent core — `crates/core/
//! src/engine.rs` and `crates/fabric/` — the only places the simulator
//! takes locks; fixture workspaces are scanned whole.

use crate::alloc::resolve;
use crate::lexer::{Tok, TokKind};
use crate::parse::{call_sites, is_keyword, CallKind};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::{BTreeMap, BTreeSet, HashMap};

const LOCK_METHODS: &[&str] = &["lock", "try_lock"];

/// One lock acquisition with its computed hold range.
struct Acq {
    id: String,
    /// Token index of the `lock` name.
    tok: usize,
    line: u32,
    /// Exclusive token bound while the guard may still be held.
    hold_end: usize,
}

/// Provenance of one may-hold-while-acquiring edge.
#[derive(Clone)]
struct Edge {
    file: String,
    line: u32,
    detail: String,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let live: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| ws.fns[i].body.is_some() && !ws.fns[i].is_test)
        .collect();
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_qual_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for &i in &live {
        let f = &ws.fns[i];
        by_name.entry(f.name.as_str()).or_default().push(i);
        if let Some(q) = &f.qual {
            by_qual_name
                .entry((q.as_str(), f.name.as_str()))
                .or_default()
                .push(i);
        }
    }

    // Direct acquisitions + transitive may-acquire summaries (workspace
    // wide: a helper called from the engine still counts).
    let mut acqs: HashMap<usize, Vec<Acq>> = HashMap::new();
    let mut callees: HashMap<usize, Vec<(usize, u32, String)>> = HashMap::new();
    let mut may: HashMap<usize, BTreeSet<String>> = HashMap::new();
    for &i in &live {
        let f = &ws.fns[i];
        let toks = &ws.file(f).toks;
        let body = f.body.expect("live fns have bodies");
        let mut here = Vec::new();
        for c in call_sites(toks, body) {
            if c.kind == CallKind::Method && LOCK_METHODS.contains(&c.name.as_str()) {
                let id = lock_identity(toks, c.tok);
                here.push(Acq {
                    id,
                    tok: c.tok,
                    line: c.line,
                    hold_end: hold_end(toks, body, c.tok),
                });
            } else {
                let crate_name = &ws.file(f).crate_name;
                for succ in resolve(
                    ws,
                    crate_name,
                    f.qual.as_deref(),
                    &c,
                    &by_name,
                    &by_qual_name,
                ) {
                    if succ != i {
                        callees
                            .entry(i)
                            .or_default()
                            .push((succ, c.line, c.name.clone()));
                    }
                }
            }
        }
        may.insert(i, here.iter().map(|a| a.id.clone()).collect());
        acqs.insert(i, here);
    }
    // Fixpoint: what may each function transitively acquire?
    loop {
        let mut changed = false;
        for &i in &live {
            let mut add = BTreeSet::new();
            for (succ, _, _) in callees.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
                if let Some(s) = may.get(succ) {
                    add.extend(s.iter().cloned());
                }
            }
            let mine = may.get_mut(&i).expect("seeded above");
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Build the may-hold-while-acquiring graph from in-scope functions.
    let mut graph: BTreeMap<String, BTreeMap<String, Edge>> = BTreeMap::new();
    for &i in &live {
        let f = &ws.fns[i];
        if !in_scope(ws, &ws.file(f).path) {
            continue;
        }
        let file = ws.file(f).path.clone();
        let held = &acqs[&i];
        for a in held {
            for b in held {
                if b.tok > a.tok && b.tok < a.hold_end {
                    graph
                        .entry(a.id.clone())
                        .or_default()
                        .entry(b.id.clone())
                        .or_insert_with(|| Edge {
                            file: file.clone(),
                            line: b.line,
                            detail: format!(
                                "`{}` acquires `{}` at {}:{} while holding `{}` (acquired line {})",
                                f.display_name(),
                                b.id,
                                file,
                                b.line,
                                a.id,
                                a.line
                            ),
                        });
                }
            }
            for (succ, cline, cname) in callees.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
                // The call must sit inside the hold range; approximate
                // the call position by its line relative to the hold
                // range's token lines.
                let ctok = call_tok_near(&ws.file(f).toks, *cline, cname);
                let inside = ctok.is_some_and(|t| t > a.tok && t < a.hold_end);
                if !inside {
                    continue;
                }
                for lk in may.get(succ).map(|s| s.iter()).into_iter().flatten() {
                    graph
                        .entry(a.id.clone())
                        .or_default()
                        .entry(lk.clone())
                        .or_insert_with(|| Edge {
                            file: file.clone(),
                            line: *cline,
                            detail: format!(
                                "`{}` calls `{}` at {}:{} while holding `{}`; the callee may acquire `{}`",
                                f.display_name(),
                                ws.fns[*succ].display_name(),
                                file,
                                cline,
                                a.id,
                                lk
                            ),
                        });
                }
            }
        }
    }

    // Cycle detection: for each edge a -> b, is a reachable from b?
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (a, succs) in &graph {
        for b in succs.keys() {
            let Some(path) = reach(&graph, b, a) else {
                continue;
            };
            // Cycle is a -> b -> ... -> a.
            let mut cycle = vec![a.clone()];
            cycle.extend(path);
            let mut canon = cycle.clone();
            canon.sort();
            canon.dedup();
            if !reported.insert(canon) {
                continue;
            }
            let edge = &succs[b];
            let mut notes: Vec<String> = Vec::new();
            for w in cycle.windows(2) {
                if let Some(e) = graph.get(&w[0]).and_then(|s| s.get(&w[1])) {
                    notes.push(e.detail.clone());
                }
            }
            notes.push(
                "impose a global acquisition order (or release before acquiring) \
                 to break the cycle"
                    .to_string(),
            );
            out.push(Diagnostic {
                pass: "lock-order",
                code: "lock.cycle".to_string(),
                file: edge.file.clone(),
                line: edge.line,
                function: String::new(),
                message: format!("lock-order cycle: {}", cycle.join(" -> ")),
                notes,
            });
        }
    }
    out
}

fn in_scope(ws: &Workspace, path: &str) -> bool {
    ws.synthetic || path == "crates/core/src/engine.rs" || path.starts_with("crates/fabric/src/")
}

/// Shortest path from `from` to `to` in the identity graph (BFS),
/// returned as the node list `from.. -> to` — or `None`. A self-edge is
/// the `from == to` case with an explicit edge, handled by the caller
/// having found `to` among `from`'s successors.
fn reach(
    graph: &BTreeMap<String, BTreeMap<String, Edge>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    if from == to {
        return Some(vec![to.to_string()]);
    }
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        for s in graph.get(n).map(|m| m.keys()).into_iter().flatten() {
            if s == to {
                let mut path = vec![to.to_string(), n.to_string()];
                let mut cur = n;
                while let Some(&p) = parent.get(cur) {
                    path.push(p.to_string());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if !parent.contains_key(s.as_str()) && s != from {
                parent.insert(s, n);
                queue.push_back(s);
            }
        }
    }
    None
}

/// Normalised receiver chain of a `.lock()` call: walk backwards from the
/// method name through `expr.field`, `expr[idx]` and `expr(args)` links.
fn lock_identity(toks: &[Tok], lock_tok: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    // toks[lock_tok] is `lock`; toks[lock_tok - 1] is `.`.
    let mut k = lock_tok as isize - 2;
    while k >= 0 {
        let t = &toks[k as usize];
        match t.text.as_str() {
            "]" | ")" => {
                let (open, close, abs) = if t.text == "]" {
                    ("[", "]", "[_]")
                } else {
                    ("(", ")", "(_)")
                };
                let mut depth = 0i32;
                while k >= 0 {
                    let s = toks[k as usize].text.as_str();
                    if s == close {
                        depth += 1;
                    } else if s == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k -= 1;
                }
                parts.push(abs.to_string());
                k -= 1;
            }
            _ if (t.kind == TokKind::Ident && !is_keyword(&t.text) || t.text == "self")
                || t.kind == TokKind::Lit =>
            {
                parts.push(t.text.clone());
                if k >= 1 && toks[(k - 1) as usize].is(".") {
                    k -= 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    if parts.first().is_some_and(|p| p == "self") {
        parts.remove(0);
    }
    let mut s = String::new();
    for p in &parts {
        if p == "[_]" || p == "(_)" {
            s.push_str(p);
        } else {
            if !s.is_empty() {
                s.push('.');
            }
            s.push_str(p);
        }
    }
    if s.is_empty() {
        "<expr>".to_string()
    } else {
        s
    }
}

/// How long may the guard produced at `lock_tok` be held?
fn hold_end(toks: &[Tok], body: (usize, usize), lock_tok: usize) -> usize {
    let (_, bend) = body;
    // Find the start of the receiver chain, then the statement start.
    let mut chain_start = lock_tok;
    {
        let mut k = lock_tok as isize - 2;
        while k >= 0 {
            let t = &toks[k as usize];
            match t.text.as_str() {
                "]" | ")" => {
                    let (open, close) = if t.text == "]" {
                        ("[", "]")
                    } else {
                        ("(", ")")
                    };
                    let mut depth = 0i32;
                    while k >= 0 {
                        let s = toks[k as usize].text.as_str();
                        if s == close {
                            depth += 1;
                        } else if s == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k -= 1;
                    }
                    chain_start = k.max(0) as usize;
                    k -= 1;
                }
                _ if (t.kind == TokKind::Ident && !is_keyword(&t.text) || t.text == "self")
                    || t.kind == TokKind::Lit =>
                {
                    chain_start = k as usize;
                    if k >= 1 && toks[(k - 1) as usize].is(".") {
                        k -= 2;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
    // Statement tokens run back to the nearest `;`/`{`/`}`.
    let mut stmt_start = chain_start;
    while stmt_start > 0 {
        let t = &toks[stmt_start - 1];
        if t.is(";") || t.is("{") || t.is("}") {
            break;
        }
        stmt_start -= 1;
    }
    let stmt = &toks[stmt_start..chain_start];
    let is_let = stmt.iter().any(|t| t.is_ident("let")) && stmt.iter().any(|t| t.is("="));
    if !is_let {
        // Temporary guard: dies at the end of the statement (or of the
        // enclosing argument list, whichever closes first).
        let mut depth = 0i32;
        let mut k = lock_tok + 1;
        while k < bend {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                }
                ";" if depth == 0 => return k,
                _ => {}
            }
            k += 1;
        }
        return bend;
    }
    // Let-bound guard: held to the end of the enclosing block, or to an
    // explicit `drop(guard)`.
    let guard: Option<&str> = stmt
        .iter()
        .position(|t| t.is("="))
        .and_then(|eq| {
            stmt[..eq]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
        })
        .map(|t| t.text.as_str());
    let mut depth = 0i32;
    let mut k = lock_tok + 1;
    while k < bend {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            "drop"
                if toks.get(k + 1).is_some_and(|t| t.is("("))
                    && guard.is_some()
                    && toks.get(k + 2).map(|t| t.text.as_str()) == guard
                    && toks.get(k + 3).is_some_and(|t| t.is(")")) =>
            {
                return k;
            }
            _ => {}
        }
        k += 1;
    }
    bend
}

/// Token index of the call named `name` on `line` (used to anchor call
/// sites back into hold ranges).
fn call_tok_near(toks: &[Tok], line: u32, name: &str) -> Option<usize> {
    toks.iter()
        .position(|t| t.line == line && t.kind == TokKind::Ident && t.text == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn identity_normalises_index_and_self() {
        let f = crate::parse::SourceFile::new(
            "t.rs".into(),
            "fixture".into(),
            "fn f(&self) { self.inboxes[dst].0.lock(); }",
        );
        let lock = f.toks.iter().position(|t| t.text == "lock").unwrap();
        assert_eq!(lock_identity(&f.toks, lock), "inboxes[_].0");
    }

    #[test]
    fn ab_ba_cycle_is_flagged() {
        let d = diags(
            "
            fn forward(a: &Port, b: &Port) {
                let ga = a.east.lock().unwrap();
                let gb = b.west.lock().unwrap();
                drop(gb); drop(ga);
            }
            fn backward(a: &Port, b: &Port) {
                let gb = b.west.lock().unwrap();
                let ga = a.east.lock().unwrap();
                drop(ga); drop(gb);
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "lock.cycle");
        assert!(d[0].message.contains("east"));
        assert!(d[0].message.contains("west"));
    }

    #[test]
    fn nested_same_class_is_a_self_cycle() {
        let d = diags(
            "
            fn hop(&self, src: usize, dst: usize) {
                let held = self.ports[src].lock().unwrap();
                let peer = self.ports[dst].lock().unwrap();
                drop(peer); drop(held);
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ports[_]"));
    }

    #[test]
    fn temporary_guard_does_not_hold_across_statements() {
        let d = diags(
            "
            fn f(a: &M, b: &M) {
                a.x.lock().unwrap().push(1);
                b.y.lock().unwrap().push(2);
            }
            fn g(a: &M, b: &M) {
                b.y.lock().unwrap().push(1);
                a.x.lock().unwrap().push(2);
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drop_releases_before_second_acquire() {
        let d = diags(
            "
            fn f(a: &M, b: &M) {
                let ga = a.x.lock().unwrap();
                drop(ga);
                let gb = b.y.lock().unwrap();
                drop(gb);
            }
            fn g(a: &M, b: &M) {
                let gb = b.y.lock().unwrap();
                drop(gb);
                let ga = a.x.lock().unwrap();
                drop(ga);
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn interprocedural_cycle_through_helper() {
        let d = diags(
            "
            impl Node {
                fn outer(&self) {
                    let g = self.east.lock().unwrap();
                    self.helper();
                    drop(g);
                }
                fn helper(&self) {
                    let g = self.west.lock().unwrap();
                    self.closer();
                    drop(g);
                }
                fn closer(&self) {
                    let g = self.east.lock().unwrap();
                    drop(g);
                }
            }
            ",
        );
        assert!(!d.is_empty(), "{d:?}");
        assert!(d[0].message.contains("east"));
    }
}
