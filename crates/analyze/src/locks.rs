//! Pass 3 — lock-order / deadlock detection.
//!
//! The sharded PDES engine keeps one `Mutex` per shard mailbox; the
//! pre-PR-4 coherent crossbar deadlocked ≥4×4 meshes precisely because a
//! sender held its local port lock while acquiring the peer's. This pass
//! makes that class of bug a lint failure instead of a hung simulation:
//!
//! 1. Every `.lock()` / `.try_lock()` call in scope is extracted and given
//!    a *lock identity*: the normalised receiver chain (`self.` stripped,
//!    index expressions abstracted to `[_]`, call arguments to `(_)`), so
//!    `self.inboxes[dst].0.lock()` and `self.inboxes[src].0.lock()` are
//!    the same lock *class* `inboxes[_].0`.
//! 2. A guard's *hold range* is computed: a let-bound guard lives to the
//!    end of its enclosing block (or an explicit `drop(guard)`); a
//!    temporary (`x.lock().unwrap().push(..)`) lives to the end of its
//!    statement.
//! 3. Acquisitions inside a hold range add may-hold-while-acquiring
//!    edges; calls inside a hold range add edges to everything the callee
//!    may transitively acquire (the shared engine's fixpoint over the
//!    workspace call graph — [`crate::callgraph::CallGraph::propagate`]).
//! 4. Any cycle in the resulting graph — including a self-edge, i.e. two
//!    locks of the same class nested — is reported as `lock.cycle`.
//!
//! Two instances of one lock class acquired in a nested fashion count as
//! a cycle on purpose: without a global order between instances (shard
//! ids, port sides) that shape deadlocks exactly like an A/B-B/A pair.
//!
//! In production runs the scope is the concurrent core — `crates/core/
//! src/engine.rs` and `crates/fabric/` — the only places the simulator
//! takes locks; fixture workspaces are scanned whole.

use crate::callgraph::{receiver_chain, CallGraph};
use crate::lexer::{Tok, TokKind};
use crate::parse::{is_keyword, CallKind};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::{BTreeMap, BTreeSet, HashMap};

const LOCK_METHODS: &[&str] = &["lock", "try_lock"];

/// One lock acquisition with its computed hold range.
struct Acq {
    id: String,
    /// Token index of the `lock` name.
    tok: usize,
    line: u32,
    /// Exclusive token bound while the guard may still be held.
    hold_end: usize,
}

/// Provenance of one may-hold-while-acquiring edge.
#[derive(Clone)]
struct Edge {
    file: String,
    line: u32,
    detail: String,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    run_with(ws, &CallGraph::build(ws))
}

pub fn run_with(ws: &Workspace, cg: &CallGraph) -> Vec<Diagnostic> {
    // Direct acquisitions + transitive may-acquire summaries (workspace
    // wide: a helper called from the engine still counts).
    let mut acqs: HashMap<usize, Vec<Acq>> = HashMap::new();
    let mut may: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ws.fns.len()];
    for &i in &cg.live {
        let f = &ws.fns[i];
        let toks = &ws.file(f).toks;
        let body = f.body.expect("live fns have bodies");
        let mut here = Vec::new();
        for c in &cg.sites[i] {
            if c.kind == CallKind::Method && LOCK_METHODS.contains(&c.name.as_str()) {
                let id = receiver_chain(toks, c.tok);
                here.push(Acq {
                    id,
                    tok: c.tok,
                    line: c.line,
                    hold_end: hold_end(toks, body, c.tok),
                });
            }
        }
        may[i] = here.iter().map(|a| a.id.clone()).collect();
        acqs.insert(i, here);
    }
    // Fixpoint: what may each function transitively acquire?
    cg.propagate(
        &mut may,
        |_| true,
        |caller, callee| {
            let before = caller.len();
            caller.extend(callee.iter().cloned());
            caller.len() != before
        },
    );

    // Build the may-hold-while-acquiring graph from in-scope functions.
    let mut graph: BTreeMap<String, BTreeMap<String, Edge>> = BTreeMap::new();
    for &i in &cg.live {
        let f = &ws.fns[i];
        if !in_scope(ws, &ws.file(f).path) {
            continue;
        }
        let file = ws.file(f).path.clone();
        let held = &acqs[&i];
        for a in held {
            for b in held {
                if b.tok > a.tok && b.tok < a.hold_end {
                    graph
                        .entry(a.id.clone())
                        .or_default()
                        .entry(b.id.clone())
                        .or_insert_with(|| Edge {
                            file: file.clone(),
                            line: b.line,
                            detail: format!(
                                "`{}` acquires `{}` at {}:{} while holding `{}` (acquired line {})",
                                f.display_name(),
                                b.id,
                                file,
                                b.line,
                                a.id,
                                a.line
                            ),
                        });
                }
            }
            for e in &cg.edges[i] {
                // The call must sit inside the hold range (exact: the
                // shared graph records the call's token index).
                if e.tok <= a.tok || e.tok >= a.hold_end {
                    continue;
                }
                for lk in &may[e.callee] {
                    graph
                        .entry(a.id.clone())
                        .or_default()
                        .entry(lk.clone())
                        .or_insert_with(|| Edge {
                            file: file.clone(),
                            line: e.line,
                            detail: format!(
                                "`{}` calls `{}` at {}:{} while holding `{}`; the callee may acquire `{}`",
                                f.display_name(),
                                ws.fns[e.callee].display_name(),
                                file,
                                e.line,
                                a.id,
                                lk
                            ),
                        });
                }
            }
        }
    }

    // Cycle detection: for each edge a -> b, is a reachable from b?
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (a, succs) in &graph {
        for b in succs.keys() {
            let Some(path) = reach(&graph, b, a) else {
                continue;
            };
            // Cycle is a -> b -> ... -> a.
            let mut cycle = vec![a.clone()];
            cycle.extend(path);
            let mut canon = cycle.clone();
            canon.sort();
            canon.dedup();
            if !reported.insert(canon) {
                continue;
            }
            let edge = &succs[b];
            let mut notes: Vec<String> = Vec::new();
            for w in cycle.windows(2) {
                if let Some(e) = graph.get(&w[0]).and_then(|s| s.get(&w[1])) {
                    notes.push(e.detail.clone());
                }
            }
            notes.push(
                "impose a global acquisition order (or release before acquiring) \
                 to break the cycle"
                    .to_string(),
            );
            out.push(Diagnostic {
                pass: "lock-order",
                code: "lock.cycle".to_string(),
                file: edge.file.clone(),
                line: edge.line,
                function: String::new(),
                message: format!("lock-order cycle: {}", cycle.join(" -> ")),
                notes,
            });
        }
    }
    out
}

fn in_scope(ws: &Workspace, path: &str) -> bool {
    ws.synthetic || path == "crates/core/src/engine.rs" || path.starts_with("crates/fabric/src/")
}

/// Shortest path from `from` to `to` in the identity graph (BFS),
/// returned as the node list `from.. -> to` — or `None`. A self-edge is
/// the `from == to` case with an explicit edge, handled by the caller
/// having found `to` among `from`'s successors.
fn reach(
    graph: &BTreeMap<String, BTreeMap<String, Edge>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    if from == to {
        return Some(vec![to.to_string()]);
    }
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        for s in graph.get(n).map(|m| m.keys()).into_iter().flatten() {
            if s == to {
                let mut path = vec![to.to_string(), n.to_string()];
                let mut cur = n;
                while let Some(&p) = parent.get(cur) {
                    path.push(p.to_string());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if !parent.contains_key(s.as_str()) && s != from {
                parent.insert(s, n);
                queue.push_back(s);
            }
        }
    }
    None
}

/// How long may the guard produced at `lock_tok` be held?
fn hold_end(toks: &[Tok], body: (usize, usize), lock_tok: usize) -> usize {
    let (_, bend) = body;
    // Find the start of the receiver chain, then the statement start.
    let mut chain_start = lock_tok;
    {
        let mut k = lock_tok as isize - 2;
        while k >= 0 {
            let t = &toks[k as usize];
            match t.text.as_str() {
                "]" | ")" => {
                    let (open, close) = if t.text == "]" {
                        ("[", "]")
                    } else {
                        ("(", ")")
                    };
                    let mut depth = 0i32;
                    while k >= 0 {
                        let s = toks[k as usize].text.as_str();
                        if s == close {
                            depth += 1;
                        } else if s == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k -= 1;
                    }
                    chain_start = k.max(0) as usize;
                    k -= 1;
                }
                _ if (t.kind == TokKind::Ident && !is_keyword(&t.text) || t.text == "self")
                    || t.kind == TokKind::Lit =>
                {
                    chain_start = k as usize;
                    if k >= 1 && toks[(k - 1) as usize].is(".") {
                        k -= 2;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
    // Statement tokens run back to the nearest `;`/`{`/`}`.
    let mut stmt_start = chain_start;
    while stmt_start > 0 {
        let t = &toks[stmt_start - 1];
        if t.is(";") || t.is("{") || t.is("}") {
            break;
        }
        stmt_start -= 1;
    }
    let stmt = &toks[stmt_start..chain_start];
    let is_let = stmt.iter().any(|t| t.is_ident("let")) && stmt.iter().any(|t| t.is("="));
    if !is_let {
        // Temporary guard: dies at the end of the statement (or of the
        // enclosing argument list, whichever closes first).
        let mut depth = 0i32;
        let mut k = lock_tok + 1;
        while k < bend {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                }
                ";" if depth == 0 => return k,
                _ => {}
            }
            k += 1;
        }
        return bend;
    }
    // Let-bound guard: held to the end of the enclosing block, or to an
    // explicit `drop(guard)`.
    let guard: Option<&str> = stmt
        .iter()
        .position(|t| t.is("="))
        .and_then(|eq| {
            stmt[..eq]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
        })
        .map(|t| t.text.as_str());
    let mut depth = 0i32;
    let mut k = lock_tok + 1;
    while k < bend {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            "drop"
                if toks.get(k + 1).is_some_and(|t| t.is("("))
                    && guard.is_some()
                    && toks.get(k + 2).map(|t| t.text.as_str()) == guard
                    && toks.get(k + 3).is_some_and(|t| t.is(")")) =>
            {
                return k;
            }
            _ => {}
        }
        k += 1;
    }
    bend
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn ab_ba_cycle_is_flagged() {
        let d = diags(
            "
            fn forward(a: &Port, b: &Port) {
                let ga = a.east.lock().unwrap();
                let gb = b.west.lock().unwrap();
                drop(gb); drop(ga);
            }
            fn backward(a: &Port, b: &Port) {
                let gb = b.west.lock().unwrap();
                let ga = a.east.lock().unwrap();
                drop(ga); drop(gb);
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "lock.cycle");
        assert!(d[0].message.contains("east"));
        assert!(d[0].message.contains("west"));
    }

    #[test]
    fn nested_same_class_is_a_self_cycle() {
        let d = diags(
            "
            fn hop(&self, src: usize, dst: usize) {
                let held = self.ports[src].lock().unwrap();
                let peer = self.ports[dst].lock().unwrap();
                drop(peer); drop(held);
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ports[_]"));
    }

    #[test]
    fn temporary_guard_does_not_hold_across_statements() {
        let d = diags(
            "
            fn f(a: &M, b: &M) {
                a.x.lock().unwrap().push(1);
                b.y.lock().unwrap().push(2);
            }
            fn g(a: &M, b: &M) {
                b.y.lock().unwrap().push(1);
                a.x.lock().unwrap().push(2);
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drop_releases_before_second_acquire() {
        let d = diags(
            "
            fn f(a: &M, b: &M) {
                let ga = a.x.lock().unwrap();
                drop(ga);
                let gb = b.y.lock().unwrap();
                drop(gb);
            }
            fn g(a: &M, b: &M) {
                let gb = b.y.lock().unwrap();
                drop(gb);
                let ga = a.x.lock().unwrap();
                drop(ga);
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn interprocedural_cycle_through_helper() {
        let d = diags(
            "
            impl Node {
                fn outer(&self) {
                    let g = self.east.lock().unwrap();
                    self.helper();
                    drop(g);
                }
                fn helper(&self) {
                    let g = self.west.lock().unwrap();
                    self.closer();
                    drop(g);
                }
                fn closer(&self) {
                    let g = self.east.lock().unwrap();
                    drop(g);
                }
            }
            ",
        );
        assert!(!d.is_empty(), "{d:?}");
        assert!(d[0].message.contains("east"));
    }
}
