//! Pass 7: flow-sensitive linear-resource checking (`resource.*`).
//!
//! TCCluster's hot layers are built on *strictly paired* finite
//! resources: flow-control credits (`TxCredits::consume` / `release`,
//! the paper's fig. 3 flow layer), receive-buffer occupancy, the finite
//! SrcTag table (`TagTable::allocate` / `complete` — the paper forbids
//! remote loads precisely because tags are scarce), event-arena handles
//! (`Arena::park` / `take`) and mailbox batches (`BatchRing::publish` /
//! `take`). The runtime monitors in `tcc-verify` check those pairings on
//! the traces a workload happens to drive; this pass proves them on the
//! paths fault injection has *not* hit — the early-return and error arms
//! where leaks actually live.
//!
//! Mechanically it is the first client of the intraprocedural engines:
//! [`crate::cfg`] builds the block graph, [`crate::dataflow`] runs a
//! forward may-analysis whose fact is a saturating acquire/release
//! balance interval per resource kind plus a held/released state machine
//! per let-bound handle. Anchors are *declared in the source*, not
//! hard-coded: a function marked `#[cfg_attr(lint, tcc_acquires(kind))]`
//! or `#[cfg_attr(lint, tcc_releases(kind))]` is an anchor, and any call
//! the shared call graph resolves to it becomes an event. A call whose
//! result is propagated with `?` only commits its event on the success
//! path (validate-then-commit: `consume(&pkt)?` acquires nothing when it
//! errors).
//!
//! Checked functions opt in with `#[cfg_attr(lint, tcc_linear(kind,
//! ...))]`. Codes:
//!
//! * `resource.leak` — some path reaches a function exit (explicit
//!   `return`, `?` error edge, or fall-through) with an unreleased
//!   acquire;
//! * `resource.double-release` — a handle released again after every
//!   path to the site already released it;
//! * `resource.use-after-release` — a handle used after every path to
//!   the site released it;
//! * `resource.stale-ok` — the dual check keeping the escape hatch
//!   honest: `#[cfg_attr(lint, tcc_transfer_ok)]` (a reviewed ownership
//!   handoff, e.g. parking a handle and publishing it to a peer shard)
//!   on a function no path of which actually exits holding anything.

use crate::callgraph::CallGraph;
use crate::cfg::{self, Cfg};
use crate::dataflow::{self, Analysis};
use crate::lexer::{Tok, TokKind};
use crate::parse::{is_keyword, skip_balanced, FnDef};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// Saturation bound for the anonymous balance interval: loops widen to
/// this instead of diverging, and any positive lower bound below it is
/// reported exactly.
const CAP: i8 = 8;

const HELD: u8 = 1;
const RELEASED: u8 = 2;

/// Run the pass; plain diagnostics only (fixture entry point).
pub fn run_with(ws: &Workspace, cg: &CallGraph) -> Vec<Diagnostic> {
    run_with_stats(ws, cg).0
}

/// Run the pass and report the guard metrics: how many functions were
/// actually linear-checked and which crates they span. The xtask
/// `RESOURCE_BASELINE` gate fails if the count collapses (annotations
/// deleted instead of migrated) or the span shrinks.
pub fn run_with_stats(
    ws: &Workspace,
    cg: &CallGraph,
) -> (Vec<Diagnostic>, usize, BTreeSet<String>) {
    let mut out = Vec::new();
    let mut checked = 0usize;
    let mut crates = BTreeSet::new();

    // Anchor table: fn index -> declared (kind, is_acquire) pairs.
    let mut anchors: BTreeMap<usize, Vec<(String, bool)>> = BTreeMap::new();
    for (j, f) in ws.fns.iter().enumerate() {
        let mut v: Vec<(String, bool)> = marker_args(f, "tcc_acquires")
            .into_iter()
            .map(|k| (k, true))
            .collect();
        v.extend(
            marker_args(f, "tcc_releases")
                .into_iter()
                .map(|k| (k, false)),
        );
        if !v.is_empty() {
            anchors.insert(j, v);
        }
    }

    for &i in &cg.live {
        let f = &ws.fns[i];
        if ws.exempt(f) {
            continue;
        }
        let kinds = marker_args(f, "tcc_linear");
        let transfer_ok = f.has_marker("tcc_transfer_ok");
        if kinds.is_empty() {
            if transfer_ok {
                out.push(diag(
                    ws,
                    f,
                    "resource.stale-ok",
                    f.line,
                    "tcc_transfer_ok without a tcc_linear(kind) annotation has nothing to excuse"
                        .to_string(),
                    vec!["add tcc_linear(..) or drop the escape hatch".to_string()],
                ));
            }
            continue;
        }
        checked += 1;
        crates.insert(ws.file(f).crate_name.clone());

        let toks = &ws.file(f).toks;
        let body = f.body.expect("live fns have bodies");
        let graph = cfg::build(toks, body);
        let mut holding_exit = false;
        for kind in &kinds {
            holding_exit |= check_kind(
                ws,
                f,
                &graph,
                toks,
                body,
                kind,
                &cg.edges[i],
                &anchors,
                transfer_ok,
                &mut out,
            );
        }
        if transfer_ok && !holding_exit {
            out.push(diag(
                ws,
                f,
                "resource.stale-ok",
                f.line,
                format!(
                    "tcc_transfer_ok is stale: no path exits holding a `{}` resource",
                    kinds.join("`/`")
                ),
                vec!["every exit is balanced; drop the escape hatch".to_string()],
            ));
        }
    }
    (out, checked, crates)
}

/// One resource event, anchored to its effective token position.
#[derive(Debug, Clone)]
enum Ev {
    /// Anchor call that acquires; `Some(v)` when bound to a tracked var.
    Acquire(Option<usize>),
    /// Anchor call that releases; `Some(v)` when it consumes a tracked var.
    Release(Option<usize>, u32),
    /// A tracked var mentioned outside its binding or a release.
    Use(usize, u32),
    /// Rebinding / reassignment: the old handle value is gone.
    Kill(usize),
}

/// A tracked let-bound handle.
struct Var {
    name: String,
    line: u32,
    def_tok: usize,
}

/// The dataflow fact: a saturating `[lo, hi]` balance interval for
/// anonymous acquires plus a may-state bitmask per tracked var.
#[derive(Debug, Clone, PartialEq)]
struct Fact {
    lo: i8,
    hi: i8,
    vars: Vec<u8>,
}

impl Fact {
    fn apply(&mut self, ev: &Ev) {
        match ev {
            Ev::Acquire(None) => {
                self.lo = sat(i16::from(self.lo) + 1);
                self.hi = sat(i16::from(self.hi) + 1);
            }
            Ev::Acquire(Some(v)) => self.vars[*v] = HELD,
            Ev::Release(None, _) => {
                self.lo = sat(i16::from(self.lo) - 1);
                self.hi = sat(i16::from(self.hi) - 1);
            }
            Ev::Release(Some(v), _) => self.vars[*v] = RELEASED,
            Ev::Use(..) => {}
            Ev::Kill(v) => self.vars[*v] = 0,
        }
    }

    fn holds_anything(&self) -> bool {
        self.hi > 0 || self.vars.iter().any(|s| s & HELD != 0)
    }
}

fn sat(x: i16) -> i8 {
    x.clamp(i16::from(-CAP), i16::from(CAP)) as i8
}

struct ResFlow<'a> {
    events: &'a [Vec<Ev>],
    nvars: usize,
}

impl Analysis for ResFlow<'_> {
    type Fact = Fact;

    fn entry(&self) -> Fact {
        Fact {
            lo: 0,
            hi: 0,
            vars: vec![0; self.nvars],
        }
    }

    fn transfer(&self, block: usize, fact: &mut Fact) {
        for ev in &self.events[block] {
            fact.apply(ev);
        }
    }

    fn join(&self, into: &mut Fact, from: &Fact) -> bool {
        let mut changed = false;
        let lo = into.lo.min(from.lo);
        let hi = into.hi.max(from.hi);
        if lo != into.lo || hi != into.hi {
            into.lo = lo;
            into.hi = hi;
            changed = true;
        }
        for (a, b) in into.vars.iter_mut().zip(&from.vars) {
            let merged = *a | *b;
            if merged != *a {
                *a = merged;
                changed = true;
            }
        }
        changed
    }
}

/// Analyze one resource kind in one function. Returns whether any exit
/// path holds a resource (feeds the `stale-ok` dual check).
#[allow(clippy::too_many_arguments)]
fn check_kind(
    ws: &Workspace,
    f: &FnDef,
    graph: &Cfg,
    toks: &[Tok],
    body: (usize, usize),
    kind: &str,
    edges: &[crate::callgraph::CallEdge],
    anchors: &BTreeMap<usize, Vec<(String, bool)>>,
    transfer_ok: bool,
    out: &mut Vec<Diagnostic>,
) -> bool {
    // 1. Anchor sites of this kind, deduplicated by call token (method
    //    fan-out can resolve one site to several marked candidates).
    let mut sites: BTreeMap<usize, bool> = BTreeMap::new(); // name_tok -> acquire?
    for e in edges {
        let Some(marks) = anchors.get(&e.callee) else {
            continue;
        };
        for (k, acq) in marks {
            if k == kind {
                // An acquire mark wins over a same-site release mark:
                // over-approximating toward "held" is the safe direction.
                let slot = sites.entry(e.tok).or_insert(*acq);
                *slot |= *acq;
            }
        }
    }
    if sites.is_empty() {
        return false;
    }

    // 2. Tracked vars: acquires bound by a plain `let`.
    let mut vars: Vec<Var> = Vec::new();
    let var_id = |name: String, line: u32, def_tok: usize, vars: &mut Vec<Var>| -> usize {
        if let Some(v) = vars.iter().position(|v| v.name == name) {
            v
        } else {
            vars.push(Var {
                name,
                line,
                def_tok,
            });
            vars.len() - 1
        }
    };
    let mut events: BTreeMap<usize, Vec<Ev>> = BTreeMap::new();
    let mut release_arg_ranges: Vec<(usize, usize, usize)> = Vec::new(); // (open, close, event_tok)
    for (&name_tok, &acquire) in &sites {
        let (eff, args) = effective_site(toks, name_tok);
        if acquire {
            let bound = binding_for(toks, name_tok)
                .map(|(name, def_tok)| var_id(name, toks[name_tok].line, def_tok, &mut vars));
            events.entry(eff).or_default().push(Ev::Acquire(bound));
        } else {
            if let Some((a, b)) = args {
                release_arg_ranges.push((a, b, eff));
            }
            events
                .entry(eff)
                .or_default()
                .push(Ev::Release(None, toks[name_tok].line));
        }
    }

    // 3. Uses / kills / release-arg resolution for tracked vars.
    let inner = (body.0 + 1, body.1.saturating_sub(1));
    for (t_idx, t) in toks
        .iter()
        .enumerate()
        .take(inner.1.min(toks.len()))
        .skip(inner.0)
    {
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        let Some(v) = vars.iter().position(|v| v.name == t.text) else {
            continue;
        };
        if vars[v].def_tok == t_idx {
            continue;
        }
        let prev = t_idx.checked_sub(1).map(|p| toks[p].text.as_str());
        if prev == Some(".") {
            continue; // field/method of some other receiver
        }
        // Inside a release anchor's argument list: that release consumes
        // this var rather than merely using it.
        if let Some(&(_, _, ev_tok)) = release_arg_ranges
            .iter()
            .find(|(a, b, _)| *a < t_idx && t_idx < *b)
        {
            if let Some(evs) = events.get_mut(&ev_tok) {
                for ev in evs.iter_mut() {
                    if let Ev::Release(slot @ None, _) = ev {
                        *slot = Some(v);
                    }
                }
            }
            continue;
        }
        let rebind = prev == Some("let")
            || (prev == Some("mut") && t_idx >= 2 && toks[t_idx - 2].is_ident("let"));
        let assign = toks.get(t_idx + 1).is_some_and(|n| n.is("="));
        if rebind || assign {
            events.entry(t_idx).or_default().push(Ev::Kill(v));
        } else {
            events.entry(t_idx).or_default().push(Ev::Use(v, t.line));
        }
    }

    // 4. Per-block ordered event lists.
    let mut block_events: Vec<Vec<Ev>> = vec![Vec::new(); graph.blocks.len()];
    for (b, blk) in graph.blocks.iter().enumerate() {
        for &(a, e) in &blk.segs {
            for (_, evs) in events.range(a..e) {
                block_events[b].extend(evs.iter().cloned());
            }
        }
    }

    // 5. Solve, then re-walk reachable blocks to report.
    let flow = ResFlow {
        events: &block_events,
        nvars: vars.len(),
    };
    let facts = dataflow::solve(graph, &flow);
    let mut holding = false;
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for (b, entry) in facts.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let mut fact = entry.clone();
        for ev in &block_events[b] {
            match ev {
                Ev::Release(Some(v), line)
                    if fact.vars[*v] == RELEASED && seen.insert((*line, format!("dr:{v}"))) =>
                {
                    out.push(diag(
                        ws,
                        f,
                        "resource.double-release",
                        *line,
                        format!(
                            "`{}` ({kind}) is already released on every path reaching \
                             this second release",
                            vars[*v].name
                        ),
                        vec![format!(
                            "first acquired at line {}; a handle is spent by its release",
                            vars[*v].line
                        )],
                    ));
                }
                Ev::Use(v, line)
                    if fact.vars[*v] == RELEASED && seen.insert((*line, format!("ua:{v}"))) =>
                {
                    out.push(diag(
                        ws,
                        f,
                        "resource.use-after-release",
                        *line,
                        format!(
                            "`{}` ({kind}) is used after every path reaching here \
                             released it",
                            vars[*v].name
                        ),
                        vec![format!("acquired at line {}", vars[*v].line)],
                    ));
                }
                _ => {}
            }
            fact.apply(ev);
        }
        for e in graph.exit_edges(b) {
            if transfer_ok {
                holding |= fact.holds_anything();
                continue;
            }
            for (v, state) in fact.vars.iter().enumerate() {
                if state & HELD != 0 && seen.insert((e.line, format!("lk:{v}"))) {
                    out.push(diag(
                        ws,
                        f,
                        "resource.leak",
                        e.line,
                        format!(
                            "`{}` ({kind}) acquired at line {} may still be held at this exit",
                            vars[v].name, vars[v].line
                        ),
                        vec![
                            "release it on every path, or mark a reviewed ownership handoff \
                             with #[cfg_attr(lint, tcc_transfer_ok)]"
                                .to_string(),
                        ],
                    ));
                }
            }
            if fact.hi > 0 && seen.insert((e.line, "lk:#".to_string())) {
                out.push(diag(
                    ws,
                    f,
                    "resource.leak",
                    e.line,
                    format!(
                        "unbalanced `{kind}` acquires: the balance may reach {} at this exit",
                        fact.hi
                    ),
                    vec![
                        "pair every acquire with a release on this path, or mark a reviewed \
                         ownership handoff with #[cfg_attr(lint, tcc_transfer_ok)]"
                            .to_string(),
                    ],
                ));
            }
        }
    }
    holding
}

/// Where an anchor call's event takes effect, plus its argument range.
///
/// `consume(&pkt)?` commits nothing on the error path — the event is
/// shifted past the `?`, landing in the success-path block the CFG
/// split off.
fn effective_site(toks: &[Tok], name_tok: usize) -> (usize, Option<(usize, usize)>) {
    let mut j = name_tok + 1;
    // Turbofish between name and argument list.
    if toks.get(j).is_some_and(|t| t.is("::")) && toks.get(j + 1).is_some_and(|t| t.is("<")) {
        let mut angle = 0i32;
        j += 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    if !toks.get(j).is_some_and(|t| t.is("(")) {
        return (name_tok, None);
    }
    let close = skip_balanced(toks, j, "(", ")");
    if toks.get(close).is_some_and(|t| t.is("?")) {
        (
            (close + 1).min(toks.len().saturating_sub(1)),
            Some((j, close - 1)),
        )
    } else {
        (name_tok, Some((j, close - 1)))
    }
}

/// `let [mut] name [: Ty] = ... anchor(..)`: the bound name, if the
/// statement containing the anchor call is a plain let-binding.
fn binding_for(toks: &[Tok], name_tok: usize) -> Option<(String, usize)> {
    let mut k = name_tok;
    for _ in 0..40 {
        if k == 0 {
            break;
        }
        if matches!(toks[k - 1].text.as_str(), ";" | "{" | "}") {
            break;
        }
        k -= 1;
    }
    if !toks.get(k).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut m = k + 1;
    if toks.get(m).is_some_and(|t| t.is_ident("mut")) {
        m += 1;
    }
    let name = toks.get(m)?;
    if name.kind != TokKind::Ident || is_keyword(&name.text) || name.text == "_" {
        // `let _ = acquire()` deliberately discards the binding: keep
        // the acquire anonymous (counter-mode) instead of tracking a
        // `_` variable no release can ever name.
        return None;
    }
    // An `=` must separate the binding from the call.
    let eq = (m + 1..name_tok).any(|j| toks[j].is("="));
    if !eq {
        return None;
    }
    Some((name.text.clone(), m))
}

/// Arguments of `#[cfg_attr(lint, marker(a, b, ...))]` on `f`, in order.
pub fn marker_args(f: &FnDef, marker: &str) -> Vec<String> {
    let mut out = Vec::new();
    for a in &f.attrs {
        let parts: Vec<&str> = a.split_whitespace().collect();
        for (i, p) in parts.iter().enumerate() {
            if *p != marker || parts.get(i + 1) != Some(&"(") {
                continue;
            }
            for q in &parts[i + 2..] {
                match *q {
                    ")" => break,
                    "," => {}
                    id => out.push((*id).to_string()),
                }
            }
        }
    }
    out
}

fn diag(
    ws: &Workspace,
    f: &FnDef,
    code: &str,
    line: u32,
    message: String,
    notes: Vec<String>,
) -> Diagnostic {
    Diagnostic {
        pass: "linear-resource",
        code: code.to_string(),
        file: ws.file(f).path.clone(),
        line,
        function: f.display_name(),
        message,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(&[("fix.rs", src)]);
        let cg = CallGraph::build(&ws);
        run_with(&ws, &cg)
    }

    const ANCHORS: &str = "
        pub struct Pool { n: u32 }
        impl Pool {
            #[cfg_attr(lint, tcc_acquires(credit))]
            pub fn consume(&mut self) -> Result<(), ()> { self.n -= 1; Ok(()) }
            #[cfg_attr(lint, tcc_releases(credit))]
            pub fn release(&mut self) { self.n += 1; }
        }
    ";

    #[test]
    fn early_return_leak_is_flagged_on_the_exit_line_only() {
        let src = format!(
            "{ANCHORS}
            #[cfg_attr(lint, tcc_linear(credit))]
            fn leaky(p: &mut Pool, early: bool) -> Result<(), ()> {{
                p.consume()?;
                if early {{
                    return Err(());
                }}
                p.release();
                Ok(())
            }}"
        );
        let d = run(&src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].code, "resource.leak");
        // Anchored to the early return, not the balanced tail exit.
        assert!(d[0].message.contains("credit"));
    }

    #[test]
    fn question_mark_on_the_acquire_itself_is_not_a_leak() {
        let src = format!(
            "{ANCHORS}
            #[cfg_attr(lint, tcc_linear(credit))]
            fn guarded(p: &mut Pool) -> Result<(), ()> {{
                p.consume()?;
                p.release();
                Ok(())
            }}"
        );
        let d = run(&src);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn loop_leak_widens_and_reports() {
        let src = format!(
            "{ANCHORS}
            #[cfg_attr(lint, tcc_linear(credit))]
            fn pump(p: &mut Pool, n: u32) {{
                for _ in 0..n {{
                    let _ = p.consume();
                }}
            }}"
        );
        let d = run(&src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].code, "resource.leak");
    }

    #[test]
    fn transfer_ok_excuses_handoffs_and_stale_ok_keeps_it_honest() {
        let handoff = format!(
            "{ANCHORS}
            #[cfg_attr(lint, tcc_linear(credit), tcc_transfer_ok)]
            fn send(p: &mut Pool) {{
                let _ = p.consume();
            }}"
        );
        assert!(run(&handoff).is_empty());

        let stale = format!(
            "{ANCHORS}
            #[cfg_attr(lint, tcc_linear(credit), tcc_transfer_ok)]
            fn balanced(p: &mut Pool) {{
                let _ = p.consume();
                p.release();
            }}"
        );
        let d = run(&stale);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].code, "resource.stale-ok");
    }

    #[test]
    fn var_tracking_catches_double_release_and_use_after_release() {
        let src = "
            pub struct Arena { slots: Vec<u32> }
            impl Arena {
                #[cfg_attr(lint, tcc_acquires(arena_handle))]
                pub fn park(&mut self, x: u32) -> u32 { self.slots.push(x); 0 }
                #[cfg_attr(lint, tcc_releases(arena_handle))]
                pub fn take(&mut self, h: u32) -> u32 { self.slots[h as usize] }
            }
            #[cfg_attr(lint, tcc_linear(arena_handle))]
            fn double(a: &mut Arena) {
                let h = a.park(7);
                a.take(h);
                a.take(h);
            }
            #[cfg_attr(lint, tcc_linear(arena_handle))]
            fn stale_use(a: &mut Arena) -> u32 {
                let h = a.park(9);
                let v = a.take(h);
                v + h
            }
        ";
        let d = run(src);
        let codes: Vec<&str> = d.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"resource.double-release"), "{d:#?}");
        assert!(codes.contains(&"resource.use-after-release"), "{d:#?}");
        assert!(!codes.contains(&"resource.leak"), "{d:#?}");
    }

    #[test]
    fn anchor_markers_parse_with_multiple_kinds() {
        let ws = Workspace::from_sources(&[(
            "fix.rs",
            "#[cfg_attr(lint, tcc_linear(credit, srctag))] fn f() {}",
        )]);
        assert_eq!(marker_args(&ws.fns[0], "tcc_linear"), ["credit", "srctag"]);
        assert!(marker_args(&ws.fns[0], "tcc_acquires").is_empty());
    }
}
