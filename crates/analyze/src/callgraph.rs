//! The shared interprocedural engine.
//!
//! Before this module existed, `alloc.rs` and `locks.rs` each built their
//! own name index, resolved their own call sites and ran their own ad-hoc
//! reachability loop. Four passes half-reimplementing one call graph is
//! how the epoch-phase and panic-freedom passes would have doubled that
//! again, so the machinery lives here once:
//!
//! * [`CallGraph::build`] — one pass over every live (non-test, has-body)
//!   function: its raw [`CallSite`]s in body token order plus the resolved
//!   intra-workspace [`CallEdge`]s. Resolution is the same deliberate
//!   may-analysis the alloc pass shipped with: method names fan out to
//!   every workspace method of that name the caller's crate can import,
//!   `Type::name` paths stay precise, externals resolve to nothing.
//! * [`CallGraph::propagate`] — generic backward fixpoint: callee
//!   summaries are joined into callers until nothing changes. The lock
//!   pass instantiates it with may-acquire sets, the phase pass with
//!   phase-rank bitmasks.
//! * [`CallGraph::find_path`] — forward BFS from a root to the first
//!   function satisfying a predicate, expanding only through functions a
//!   pass-supplied `enter` predicate admits (escape hatches like
//!   `tcc_alloc_ok` / `tcc_panic_ok` are boundaries, not edges). Returns
//!   the call chain for the diagnostic note.
//! * [`receiver_chain`] — the normalised receiver spelling (`self.`
//!   stripped, indices abstracted to `[_]`, argument lists to `(_)`) that
//!   the lock pass uses as a lock identity and the phase pass uses to
//!   tell `BatchRing::take` receivers from `Option::take` ones.

use crate::lexer::{Tok, TokKind};
use crate::parse::{call_sites, is_keyword, CallKind, CallSite};
use crate::Workspace;
use std::collections::{HashMap, VecDeque};

/// One resolved intra-workspace call: `callee` indexes `ws.fns`.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    pub callee: usize,
    /// Line of the call site (for diagnostics).
    pub line: u32,
    /// Token index of the callee name (for ordering against other sites
    /// in the same body — exact, unlike the line-based anchoring the lock
    /// pass used before).
    pub tok: usize,
}

/// The workspace call graph, indexed parallel to `ws.fns`.
#[derive(Debug)]
pub struct CallGraph {
    /// Functions in the graph's domain: non-test, with a body. Exempt
    /// crates are *included* (the lock pass wants them); passes that do
    /// not apply there filter with their own predicates.
    pub live: Vec<usize>,
    /// Raw call sites per function, in body token order. Empty for
    /// functions outside `live`.
    pub sites: Vec<Vec<CallSite>>,
    /// Resolved workspace-internal edges per function, in site order.
    /// Self-edges are dropped (they never change reachability).
    pub edges: Vec<Vec<CallEdge>>,
}

impl CallGraph {
    /// Build the graph once; every pass shares it.
    pub fn build(ws: &Workspace) -> CallGraph {
        let live: Vec<usize> = (0..ws.fns.len())
            .filter(|&i| ws.fns[i].body.is_some() && !ws.fns[i].is_test)
            .collect();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qual_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for &i in &live {
            let f = &ws.fns[i];
            by_name.entry(f.name.as_str()).or_default().push(i);
            if let Some(q) = &f.qual {
                by_qual_name
                    .entry((q.as_str(), f.name.as_str()))
                    .or_default()
                    .push(i);
            }
        }
        let mut sites: Vec<Vec<CallSite>> = (0..ws.fns.len()).map(|_| Vec::new()).collect();
        let mut edges: Vec<Vec<CallEdge>> = (0..ws.fns.len()).map(|_| Vec::new()).collect();
        for &i in &live {
            let f = &ws.fns[i];
            let toks = &ws.file(f).toks;
            let body = f.body.expect("live fns have bodies");
            let ss = call_sites(toks, body);
            let crate_name = &ws.file(f).crate_name;
            for c in &ss {
                for succ in resolve(
                    ws,
                    crate_name,
                    f.qual.as_deref(),
                    c,
                    &by_name,
                    &by_qual_name,
                ) {
                    if succ != i {
                        edges[i].push(CallEdge {
                            callee: succ,
                            line: c.line,
                            tok: c.tok,
                        });
                    }
                }
            }
            sites[i] = ss;
        }
        CallGraph { live, sites, edges }
    }

    /// Backward fixpoint: for every edge `caller -> callee` whose callee
    /// `enter` admits, `join(caller_summary, callee_summary)` until no
    /// join reports a change. `join` must be monotone (only ever grow the
    /// summary) or this will not terminate.
    pub fn propagate<S>(
        &self,
        summaries: &mut [S],
        enter: impl Fn(usize) -> bool,
        join: impl Fn(&mut S, &S) -> bool,
    ) {
        loop {
            let mut changed = false;
            for &i in &self.live {
                for e in &self.edges[i] {
                    if !enter(e.callee) {
                        continue;
                    }
                    let (caller, callee) = index_pair(summaries, i, e.callee);
                    changed |= join(caller, callee);
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// BFS from `root` to the first function satisfying `target`,
    /// expanding only functions `enter` admits (the root included).
    /// Returns the chain `root .. target` of function indices, or `None`
    /// when no admitted path reaches a target.
    pub fn find_path(
        &self,
        root: usize,
        target: impl Fn(usize) -> bool,
        enter: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut seen = vec![root];
        let mut q = VecDeque::from([root]);
        while let Some(n) = q.pop_front() {
            if target(n) {
                let mut chain = vec![n];
                let mut cur = n;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                return Some(chain);
            }
            if !enter(n) {
                continue;
            }
            for e in &self.edges[n] {
                if !seen.contains(&e.callee) {
                    seen.push(e.callee);
                    parent.insert(e.callee, n);
                    q.push_back(e.callee);
                }
            }
        }
        None
    }
}

/// Disjoint `(&mut a, &b)` views into one slice. `a != b` is a caller
/// invariant (the graph drops self-edges).
fn index_pair<T>(s: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    if a < b {
        let (lo, hi) = s.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = s.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

/// Resolve a call site to candidate workspace functions (may-analysis:
/// over-approximate on ambiguity, empty for externals). Candidates in
/// crates the caller's crate cannot import are discarded — a name match
/// across an absent dependency edge is a collision, not a call.
fn resolve(
    ws: &Workspace,
    caller_crate: &str,
    caller_qual: Option<&str>,
    c: &CallSite,
    by_name: &HashMap<&str, Vec<usize>>,
    by_qual_name: &HashMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    let importable = |i: &usize| ws.visible(caller_crate, &ws.files[ws.fns[*i].file].crate_name);
    match c.kind {
        CallKind::Macro => Vec::new(),
        CallKind::Method => by_name
            .get(c.name.as_str())
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|i| ws.fns[*i].qual.is_some() && importable(i))
                    .collect()
            })
            .unwrap_or_default(),
        CallKind::Path => match c.qual.as_deref() {
            Some("Self") => caller_qual
                .and_then(|q| by_qual_name.get(&(q, c.name.as_str())))
                .map(|v| v.iter().copied().filter(|i| importable(i)).collect())
                .unwrap_or_default(),
            Some(q) => {
                if let Some(v) = by_qual_name.get(&(q, c.name.as_str())) {
                    v.iter().copied().filter(|i| importable(i)).collect()
                } else if q.starts_with(char::is_lowercase) {
                    // Module path (`channel::serialization_ps`): free fns.
                    by_name
                        .get(c.name.as_str())
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|i| ws.fns[*i].qual.is_none() && importable(i))
                                .collect()
                        })
                        .unwrap_or_default()
                } else {
                    Vec::new() // external type (Vec, Bytes, ...)
                }
            }
            None => by_name
                .get(c.name.as_str())
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|i| ws.fns[*i].qual.is_none() && importable(i))
                        .collect()
                })
                .unwrap_or_default(),
        },
    }
}

/// Normalised receiver chain of a method call: walk backwards from the
/// method name through `expr.field`, `expr[idx]` and `expr(args)` links,
/// abstracting indices to `[_]`, argument lists to `(_)` and stripping a
/// leading `self.` — so `self.inboxes[dst].0.lock()` and
/// `self.inboxes[src].0.lock()` share the spelling `inboxes[_].0`.
pub fn receiver_chain(toks: &[Tok], call_tok: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    // toks[call_tok] is the method name; toks[call_tok - 1] is `.`.
    let mut k = call_tok as isize - 2;
    while k >= 0 {
        let t = &toks[k as usize];
        match t.text.as_str() {
            "]" | ")" => {
                let (open, close, abs) = if t.text == "]" {
                    ("[", "]", "[_]")
                } else {
                    ("(", ")", "(_)")
                };
                let mut depth = 0i32;
                while k >= 0 {
                    let s = toks[k as usize].text.as_str();
                    if s == close {
                        depth += 1;
                    } else if s == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k -= 1;
                }
                parts.push(abs.to_string());
                k -= 1;
            }
            _ if (t.kind == TokKind::Ident && !is_keyword(&t.text) || t.text == "self")
                || t.kind == TokKind::Lit =>
            {
                parts.push(t.text.clone());
                if k >= 1 && toks[(k - 1) as usize].is(".") {
                    k -= 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    if parts.first().is_some_and(|p| p == "self") {
        parts.remove(0);
    }
    let mut s = String::new();
    for p in &parts {
        if p == "[_]" || p == "(_)" {
            s.push_str(p);
        } else {
            if !s.is_empty() {
                s.push('.');
            }
            s.push_str(p);
        }
    }
    if s.is_empty() {
        "<expr>".to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(&[("fix.rs", src)])
    }

    fn idx(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).expect(name)
    }

    #[test]
    fn edges_resolve_methods_paths_and_skip_externals() {
        let w = ws("
            struct S;
            impl S {
                fn a(&self) { self.b(); helper(); Vec::new(); }
                fn b(&self) {}
            }
            fn helper() {}
        ");
        let cg = CallGraph::build(&w);
        let a = idx(&w, "a");
        let callees: Vec<&str> = cg.edges[a]
            .iter()
            .map(|e| w.fns[e.callee].name.as_str())
            .collect();
        assert_eq!(callees, ["b", "helper"], "Vec::new is external");
    }

    #[test]
    fn propagate_reaches_a_fixpoint_over_chains() {
        let w = ws("
            fn a() { b(); }
            fn b() { c(); }
            fn c() {}
        ");
        let cg = CallGraph::build(&w);
        // Summary: set of reachable function names, seeded with self.
        let mut sums: Vec<std::collections::BTreeSet<String>> = w
            .fns
            .iter()
            .map(|f| std::collections::BTreeSet::from([f.name.clone()]))
            .collect();
        cg.propagate(
            &mut sums,
            |_| true,
            |a, b| {
                let before = a.len();
                a.extend(b.iter().cloned());
                a.len() != before
            },
        );
        let a = idx(&w, "a");
        assert!(sums[a].contains("c"), "{:?}", sums[a]);
    }

    #[test]
    fn find_path_respects_the_enter_boundary() {
        let w = ws("
            fn root() { stop(); }
            fn stop() { bad(); }
            fn bad() {}
        ");
        let cg = CallGraph::build(&w);
        let (root, stop, bad) = (idx(&w, "root"), idx(&w, "stop"), idx(&w, "bad"));
        let hit = cg.find_path(root, |n| n == bad, |_| true);
        assert_eq!(hit, Some(vec![root, stop, bad]));
        let blocked = cg.find_path(root, |n| n == bad, |n| n != stop);
        assert_eq!(blocked, None, "boundary fns are not expanded");
    }

    #[test]
    fn receiver_chain_normalises_index_and_self() {
        let f = crate::parse::SourceFile::new(
            "t.rs".into(),
            "fixture".into(),
            "fn f(&self) { self.inboxes[dst].0.lock(); }",
        );
        let lock = f.toks.iter().position(|t| t.text == "lock").unwrap();
        assert_eq!(receiver_chain(&f.toks, lock), "inboxes[_].0");
    }
}
