//! Item-level parsing over the token stream: functions (with their
//! attributes, impl context and body token ranges), struct field types,
//! and expression-level helpers (call-site extraction) the passes share.
//!
//! This is deliberately not a full Rust parser. It tracks exactly the
//! structure the four passes need — which function a token belongs to,
//! what type an `impl` block targets, what a struct field's declared
//! type text is — and treats everything else as an opaque token soup.

use crate::lexer::{lex, Tok, TokKind};

/// One loaded source file: its tokens plus the `tcc-analyze: allow(..)`
/// directives harvested from comments before lexing dropped them.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Owning crate directory name (`core`, `fabric`, ...); the synthetic
    /// crate name `fixture` for sources injected by tests.
    pub crate_name: String,
    pub toks: Vec<Tok>,
    /// Lines carrying `tcc-analyze: allow(code)` — a diagnostic on that
    /// line or the next is suppressed.
    pub allows: Vec<(u32, String)>,
}

impl SourceFile {
    pub fn new(path: String, crate_name: String, src: &str) -> SourceFile {
        let mut allows = Vec::new();
        for (n, line) in src.lines().enumerate() {
            if let Some(at) = line.find("tcc-analyze: allow(") {
                let rest = &line[at + "tcc-analyze: allow(".len()..];
                if let Some(end) = rest.find(')') {
                    allows.push((n as u32 + 1, rest[..end].trim().to_string()));
                }
            }
        }
        SourceFile {
            path,
            crate_name,
            toks: lex(src),
            allows,
        }
    }

    /// Is a diagnostic with `code` at `line` suppressed by an allow
    /// directive on the same or the preceding line?
    pub fn allowed(&self, line: u32, code: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, c)| (*l == line || l + 1 == line) && c == code)
    }
}

/// A parsed function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Index into the workspace's file table.
    pub file: usize,
    pub name: String,
    /// The `impl`/`trait` target type name, if this is a method.
    pub qual: Option<String>,
    /// Raw text of each attribute on the fn, tokens space-joined
    /// (`cfg_attr ( lint , tcc_no_alloc )`).
    pub attrs: Vec<String>,
    /// Token range of the signature (after the name, up to the body).
    pub sig: (usize, usize),
    /// Token range of the body including braces; `None` for trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
    pub line: u32,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`.
    pub is_test: bool,
}

impl FnDef {
    /// Does any attribute mention `marker` (e.g. `tcc_no_alloc`)?
    pub fn has_marker(&self, marker: &str) -> bool {
        self.attrs.iter().any(|a| a.contains(marker))
    }

    /// `Type::name` or bare `name` for free functions.
    pub fn display_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A struct field with its declared type text (tokens space-joined).
#[derive(Debug)]
pub struct FieldDef {
    pub owner: String,
    pub name: String,
    pub ty: String,
}

/// Everything parsed out of one file.
#[derive(Debug, Default)]
pub struct Parsed {
    pub fns: Vec<FnDef>,
    pub fields: Vec<FieldDef>,
}

/// Keywords that must never be mistaken for call names.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "pub", "mod", "use", "impl", "trait", "struct", "enum", "union", "type", "const", "static",
    "unsafe", "move", "ref", "mut", "as", "in", "where", "dyn", "async", "await", "crate", "super",
    "extern", "box",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

struct Scope {
    /// Brace depth *before* this scope's `{` opened.
    depth: usize,
    /// The impl/trait target type, if any.
    qual: Option<String>,
    is_test: bool,
}

/// Parse a file's token stream into function and field definitions.
pub fn parse_file(file_idx: usize, f: &SourceFile) -> Parsed {
    let toks = &f.toks;
    let mut out = Parsed::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                i += 1;
            }
            (TokKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|s| s.depth >= depth) {
                    scopes.pop();
                }
                i += 1;
            }
            (TokKind::Punct, "#") => {
                // `#[attr]` collected; `#![inner]` skipped.
                let inner = toks.get(i + 1).is_some_and(|t| t.is("!"));
                let open = if inner { i + 2 } else { i + 1 };
                if toks.get(open).is_some_and(|t| t.is("[")) {
                    let end = skip_balanced(toks, open, "[", "]");
                    if !inner {
                        let text = join(&toks[open + 1..end.saturating_sub(1)]);
                        pending_attrs.push(text);
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            (TokKind::Ident, "mod") => {
                let attrs = std::mem::take(&mut pending_attrs);
                let is_test = attrs
                    .iter()
                    .any(|a| a.contains("cfg") && a.contains("test"))
                    || scopes.last().is_some_and(|s| s.is_test);
                // `mod name { ... }` opens a scope; `mod name;` does not.
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is("{")) {
                    scopes.push(Scope {
                        depth,
                        qual: None,
                        is_test,
                    });
                    depth += 1;
                }
                i = j + 1;
            }
            (TokKind::Ident, "impl") | (TokKind::Ident, "trait") => {
                let is_trait = t.text == "trait";
                pending_attrs.clear();
                // Collect header tokens up to the `{` (or `;` for a
                // declaration like `trait Foo: Bar;` — rare).
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                    j += 1;
                }
                let header = &toks[i + 1..j.min(toks.len())];
                let qual = if is_trait {
                    header
                        .iter()
                        .find(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
                        .map(|t| t.text.clone())
                } else {
                    impl_target(header)
                };
                if toks.get(j).is_some_and(|t| t.is("{")) {
                    let is_test = scopes.last().is_some_and(|s| s.is_test);
                    scopes.push(Scope {
                        depth,
                        qual,
                        is_test,
                    });
                    depth += 1;
                }
                i = j + 1;
            }
            (TokKind::Ident, "struct") => {
                pending_attrs.clear();
                i = parse_struct(toks, i, &mut out.fields);
            }
            (TokKind::Ident, "fn") => {
                let attrs = std::mem::take(&mut pending_attrs);
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                let name = name_tok.text.clone();
                let line = name_tok.line;
                // Signature runs to the body `{` or a `;` (trait decl),
                // at paren/bracket depth zero.
                let mut j = i + 2;
                let mut pdepth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => pdepth += 1,
                        ")" | "]" => pdepth -= 1,
                        "{" if pdepth == 0 => break,
                        ";" if pdepth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let sig = (i + 2, j);
                let in_test_scope = scopes.iter().any(|s| s.is_test);
                let is_test =
                    in_test_scope || attrs.iter().any(|a| a == "test" || a.starts_with("test "));
                let qual = scopes.iter().rev().find_map(|s| s.qual.clone());
                if toks.get(j).is_some_and(|t| t.is("{")) {
                    let end = skip_balanced(toks, j, "{", "}");
                    out.fns.push(FnDef {
                        file: file_idx,
                        name,
                        qual,
                        attrs,
                        sig,
                        body: Some((j, end)),
                        line,
                        is_test,
                    });
                    // Do NOT skip the body: nested items inside it should
                    // still be parsed (they are rare but legal). Scopes
                    // and depth tracking handle the braces naturally.
                    i = j;
                } else {
                    out.fns.push(FnDef {
                        file: file_idx,
                        name,
                        qual,
                        attrs,
                        sig,
                        body: None,
                        line,
                        is_test,
                    });
                    i = j + 1;
                }
            }
            (TokKind::Ident, "use") => {
                pending_attrs.clear();
                while i < toks.len() && !toks[i].is(";") {
                    i += 1;
                }
                i += 1;
            }
            _ => {
                if t.kind != TokKind::Punct || t.text != "#" {
                    // An attribute applies only to the *next* item; any
                    // other significant token consumes it (statement
                    // attrs like `#[allow]` on a `let`).
                    if !pending_attrs.is_empty()
                        && !matches!(
                            t.text.as_str(),
                            "pub" | "(" | ")" | "crate" | "super" | "in"
                        )
                    {
                        pending_attrs.clear();
                    }
                }
                i += 1;
            }
        }
    }
    out
}

/// The target type name of an `impl` header: the last identifier at
/// angle-depth zero of the type part (after `for` if a trait impl),
/// skipping generics, references and the trailing `where` clause.
fn impl_target(header: &[Tok]) -> Option<String> {
    // Split off `where ...`.
    let mut end = header.len();
    let mut angle = 0i32;
    for (k, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "where" if angle <= 0 => {
                end = k;
                break;
            }
            _ => {}
        }
    }
    let header = &header[..end];
    // Find `for` at angle-depth zero (not `for<'a>` HRTB).
    let mut angle = 0i32;
    let mut ty_start = 0usize;
    for (k, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "for" if angle <= 0 && header.get(k + 1).map(|t| t.text.as_str()) != Some("<") => {
                ty_start = k + 1;
            }
            _ => {}
        }
    }
    let ty = &header[ty_start..];
    let mut angle = 0i32;
    let mut name = None;
    for t in ty {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            _ if angle <= 0 && t.kind == TokKind::Ident && !is_keyword(&t.text) => {
                name = Some(t.text.clone());
            }
            _ => {}
        }
    }
    name
}

/// Parse `struct Name { field: Ty, .. }`; returns the index past the item.
fn parse_struct(toks: &[Tok], i: usize, fields: &mut Vec<FieldDef>) -> usize {
    let Some(name) = toks.get(i + 1).map(|t| t.text.clone()) else {
        return i + 1;
    };
    let mut j = i + 2;
    // Skip generics.
    if toks.get(j).is_some_and(|t| t.is("<")) {
        let mut angle = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    match toks.get(j).map(|t| t.text.as_str()) {
        Some("{") => {
            let end = skip_balanced(toks, j, "{", "}");
            let body = &toks[j + 1..end.saturating_sub(1)];
            // Split fields at top-level commas: `[attrs] [pub[(..)]] name : ty`.
            let mut k = 0usize;
            while k < body.len() {
                // Skip attributes and visibility.
                while k < body.len() {
                    if body[k].is("#") && body.get(k + 1).is_some_and(|t| t.is("[")) {
                        k = skip_balanced(body, k + 1, "[", "]");
                    } else if body[k].is_ident("pub") {
                        k += 1;
                        if body.get(k).is_some_and(|t| t.is("(")) {
                            k = skip_balanced(body, k, "(", ")");
                        }
                    } else {
                        break;
                    }
                }
                let Some(name_tok) = body.get(k) else { break };
                if name_tok.kind != TokKind::Ident || !body.get(k + 1).is_some_and(|t| t.is(":")) {
                    k += 1;
                    continue;
                }
                let fname = name_tok.text.clone();
                let mut t = k + 2;
                let ty_start = t;
                let mut nest = 0i32;
                while t < body.len() {
                    match body[t].text.as_str() {
                        "<" | "(" | "[" => nest += 1,
                        ">" | ")" | "]" => nest -= 1,
                        ">>" => nest -= 2,
                        "," if nest <= 0 => break,
                        _ => {}
                    }
                    t += 1;
                }
                fields.push(FieldDef {
                    owner: name.clone(),
                    name: fname,
                    ty: join(&body[ty_start..t]),
                });
                k = t + 1;
            }
            end
        }
        // Tuple struct or unit struct: no named fields.
        Some("(") => skip_balanced(toks, j, "(", ")"),
        _ => j + 1,
    }
}

/// Index just past the group opened by the delimiter at `open`.
pub fn skip_balanced(toks: &[Tok], open: usize, l: &str, r: &str) -> usize {
    debug_assert!(toks[open].is(l));
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is(l) {
            depth += 1;
        } else if toks[i].is(r) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Space-join token texts (for attribute/type snippets).
pub fn join(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

/// How a call site was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)` or `path::foo(..)`.
    Path,
    /// `.foo(..)`.
    Method,
    /// `foo!(..)`.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    pub kind: CallKind,
    pub name: String,
    /// The path segment immediately before the name (`Vec` in
    /// `Vec::new`, `channel` in `channel::serialization_ps`).
    pub qual: Option<String>,
    /// Token index of the name.
    pub tok: usize,
    pub line: u32,
}

/// Extract every call site in `toks[range]`. Indexes are absolute (into
/// the file's token vector).
pub fn call_sites(toks: &[Tok], range: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (start, end) = range;
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let is_method = prev == Some(".");
            // Where would an argument list start? Allow a turbofish:
            // name ::<T,..> ( ... )
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is("::")) && toks.get(j + 1).is_some_and(|t| t.is("<"))
            {
                let mut angle = 0i32;
                j += 1;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        _ => {}
                    }
                    j += 1;
                    if angle <= 0 {
                        break;
                    }
                }
            }
            if toks.get(j).is_some_and(|t| t.is("(")) {
                let qual = if !is_method && prev == Some("::") {
                    i.checked_sub(2).map(|q| toks[q].text.clone())
                } else {
                    None
                };
                // `fn name(` is a definition, not a call.
                if prev != Some("fn") {
                    out.push(CallSite {
                        kind: if is_method {
                            CallKind::Method
                        } else {
                            CallKind::Path
                        },
                        name: t.text.clone(),
                        qual,
                        tok: i,
                        line: t.line,
                    });
                }
            } else if toks.get(i + 1).is_some_and(|t| t.is("!"))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| matches!(t.text.as_str(), "(" | "[" | "{"))
            {
                out.push(CallSite {
                    kind: CallKind::Macro,
                    name: t.text.clone(),
                    qual: None,
                    tok: i,
                    line: t.line,
                });
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> (SourceFile, Parsed) {
        let f = SourceFile::new("test.rs".into(), "fixture".into(), src);
        let p = parse_file(0, &f);
        (f, p)
    }

    #[test]
    fn fns_get_impl_quals_and_attrs() {
        let src = "
            #[cfg_attr(lint, tcc_no_alloc)]
            pub fn free(x: u64) -> u64 { x }
            impl Foo {
                fn method(&self) {}
            }
            impl Display for Bar<T> {
                fn fmt(&self) {}
            }
        ";
        let (_, p) = parsed(src);
        let names: Vec<_> = p.fns.iter().map(|f| f.display_name()).collect();
        assert_eq!(names, ["free", "Foo::method", "Bar::fmt"]);
        assert!(p.fns[0].has_marker("tcc_no_alloc"));
        assert!(!p.fns[1].has_marker("tcc_no_alloc"));
    }

    #[test]
    fn cfg_test_modules_mark_fns() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { live(); }
            }
        ";
        let (_, p) = parsed(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn struct_fields_keep_type_text() {
        let src = "
            pub struct S {
                pub at: SimTime,
                map: HashMap<u64, Vec<u8>>,
                n: usize,
            }
        ";
        let (_, p) = parsed(src);
        let tys: Vec<_> = p
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty.as_str()))
            .collect();
        assert_eq!(tys[0], ("at", "SimTime"));
        assert!(tys[1].1.contains("HashMap"));
        assert_eq!(tys[2], ("n", "usize"));
    }

    #[test]
    fn call_sites_classify_path_method_macro() {
        let src = "fn f() { helper(); Vec::with_capacity(4); x.lock(); vec![1]; it.collect::<Vec<_>>(); }";
        let (f, p) = parsed(src);
        let body = p.fns[0].body.unwrap();
        let calls = call_sites(&f.toks, body);
        let sig: Vec<_> = calls
            .iter()
            .map(|c| (c.kind, c.name.as_str(), c.qual.as_deref()))
            .collect();
        assert!(sig.contains(&(CallKind::Path, "helper", None)));
        assert!(sig.contains(&(CallKind::Path, "with_capacity", Some("Vec"))));
        assert!(sig.contains(&(CallKind::Method, "lock", None)));
        assert!(sig.contains(&(CallKind::Macro, "vec", None)));
        assert!(sig.contains(&(CallKind::Method, "collect", None)));
    }

    #[test]
    fn nested_fns_are_found() {
        let src = "fn outer() { fn inner() { Vec::new(); } inner(); }";
        let (_, p) = parsed(src);
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn allow_directives_are_harvested() {
        let src = "fn f() {\n    // tcc-analyze: allow(det.wallclock)\n    now();\n}\n";
        let f = SourceFile::new("t.rs".into(), "fixture".into(), src);
        assert!(f.allowed(2, "det.wallclock"));
        assert!(f.allowed(3, "det.wallclock"));
        assert!(!f.allowed(4, "det.wallclock"));
        assert!(!f.allowed(3, "det.randomness"));
    }
}
