//! Pass 6 — epoch-phase protocol.
//!
//! The parallel engine's epoch loop is only safe because every worker
//! obeys one phase order inside a barrier interval:
//!
//! ```text
//! drain (BatchRing::take) -> horizon minima (peek_time) ->
//!     stage (outbox append) -> publish (BatchRing::publish) -> barrier B0
//! ```
//!
//! The SPSC mailbox handoff assumes producers publish strictly before B0
//! and consumers drain strictly before computing horizon minima; until
//! this pass, that discipline lived in comments and `debug_assert!`s.
//! Here it is machine-checked:
//!
//! 1. Call sites are classified into phase *ranks* by name + normalised
//!    receiver chain ([`crate::callgraph::receiver_chain`]): `take` on a
//!    ring-like receiver is rank 0, `peek_time` rank 1, a push onto an
//!    outbox/staging/inbox receiver rank 2, `publish` on a ring-like
//!    receiver rank 3. The chain requirement keeps `Option::take` and
//!    `Arena::take` from masquerading as mailbox drains.
//! 2. Rank sets propagate through the shared call graph (a function that
//!    calls `drain_mail` is consumer-side wherever it is called).
//! 3. Each in-scope function's body is replayed in token order: a site
//!    whose lowest rank precedes the highest rank already performed in
//!    the same barrier interval is a protocol violation. Loop heads reset
//!    the interval (the back edge crosses B0 by construction). Sites
//!    whose rank set spans both consumer (0–1) and producer (2–3) work —
//!    complete epoch machines like `run_inline` — are neutral.
//! 4. Cross-shard *mutable* access that bypasses the handoff API — a
//!    mutating method call whose receiver chain starts at `shards[_]`
//!    inside a phase-ranked function — is `phase.shard-escape`.
//!
//! Production scope is `crates/core/src/engine.rs` (the only place the
//! epoch machine lives); fixture workspaces are scanned whole. Summaries
//! are still computed workspace-wide so helpers called from the engine
//! carry their ranks in.

use crate::callgraph::{receiver_chain, CallGraph};
use crate::parse::CallKind;
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::BTreeMap;

/// Human spellings for the four phase ranks.
const RANK_DESC: [&str; 4] = [
    "mailbox drain (`BatchRing::take`)",
    "horizon-minimum computation (`peek_time`)",
    "outbox staging append",
    "mailbox publish (`BatchRing::publish`)",
];

const CONSUMER_BITS: u8 = 0b0011; // drain, minima
const PRODUCER_BITS: u8 = 0b1100; // stage, publish

/// Mutating method names for the shard-escape check.
const MUTATORS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "remove",
    "extend",
    "extend_from_slice",
    "append",
    "clear",
    "drain",
    "take",
    "swap",
    "set",
    "store",
    "publish",
    "send",
    "schedule",
    "schedule_keyed",
];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    run_with(ws, &CallGraph::build(ws))
}

pub fn run_with(ws: &Workspace, cg: &CallGraph) -> Vec<Diagnostic> {
    run_with_stats(ws, cg).0
}

/// Run the pass and also report how many in-scope functions carry a
/// phase rank — the xtask guard uses the count to detect the pass going
/// blind (an anchor rename silently unclassifying the epoch machine).
pub fn run_with_stats(ws: &Workspace, cg: &CallGraph) -> (Vec<Diagnostic>, usize) {
    // 1+2. Per-function rank bitmasks: direct anchors, then the shared
    // fixpoint over the call graph.
    let mut ranks: Vec<u8> = vec![0; ws.fns.len()];
    for &i in &cg.live {
        let toks = &ws.file(&ws.fns[i]).toks;
        for c in &cg.sites[i] {
            if let Some(r) = anchor_rank(toks, c) {
                ranks[i] |= 1 << r;
            }
        }
    }
    cg.propagate(
        &mut ranks,
        |_| true,
        |caller, callee| {
            let before = *caller;
            *caller |= *callee;
            *caller != before
        },
    );

    let mut out = Vec::new();
    let mut ranked_in_scope = 0usize;
    for &i in &cg.live {
        let f = &ws.fns[i];
        let path = &ws.file(f).path;
        if !in_scope(ws, path) {
            continue;
        }
        if ranks[i] != 0 {
            ranked_in_scope += 1;
        }
        let toks = &ws.file(f).toks;
        let body = f.body.expect("live fns have bodies");

        // 3. Merge anchors and callee summaries into one token-ordered
        // event stream (a may-resolved site can contribute several
        // edges at one token — union the bits).
        #[derive(Default)]
        struct Event {
            bits: u8,
            line: u32,
            desc: String,
        }
        let mut events: BTreeMap<usize, Event> = BTreeMap::new();
        for c in &cg.sites[i] {
            if let Some(r) = anchor_rank(toks, c) {
                let e = events.entry(c.tok).or_default();
                e.bits |= 1 << r;
                e.line = c.line;
                e.desc = RANK_DESC[r as usize].to_string();
            }
        }
        for e in &cg.edges[i] {
            if ranks[e.callee] == 0 {
                continue;
            }
            let ev = events.entry(e.tok).or_default();
            ev.bits |= ranks[e.callee];
            ev.line = e.line;
            if ev.desc.is_empty() {
                ev.desc = format!("call to `{}`", ws.fns[e.callee].display_name());
            }
        }

        // Loop heads reset the barrier interval: the epoch loop's back
        // edge crosses B0, so order constraints do not span iterations.
        let resets: Vec<usize> = (body.0..body.1.min(toks.len()))
            .filter(|&k| matches!(toks[k].text.as_str(), "loop" | "while" | "for"))
            .collect();

        let mut next_reset = 0usize;
        let mut hi: i8 = -1;
        let mut hi_line = 0u32;
        let mut hi_desc = String::new();
        for (&tok, ev) in &events {
            while next_reset < resets.len() && resets[next_reset] < tok {
                hi = -1;
                next_reset += 1;
            }
            let consumer = ev.bits & CONSUMER_BITS != 0;
            let producer = ev.bits & PRODUCER_BITS != 0;
            if consumer && producer {
                continue; // complete epoch machine: neutral
            }
            let lo = ev.bits.trailing_zeros() as i8;
            let top = (0..4).rev().find(|r| ev.bits & (1 << r) != 0).unwrap_or(0) as i8;
            if lo < hi {
                let (code, message) = if hi >= 2 {
                    (
                        "phase.producer-after-barrier",
                        format!(
                            "{} follows {} in the same barrier interval — the \
                             producer-side operation escapes into the post-barrier region",
                            RANK_DESC[lo as usize], RANK_DESC[hi as usize]
                        ),
                    )
                } else {
                    (
                        "phase.drain-after-minima",
                        format!(
                            "{} follows {} — shards must finish draining before \
                             horizon minima are computed",
                            RANK_DESC[lo as usize], RANK_DESC[hi as usize]
                        ),
                    )
                };
                out.push(Diagnostic {
                    pass: "epoch-phase",
                    code: code.to_string(),
                    file: path.clone(),
                    line: ev.line,
                    function: f.display_name(),
                    notes: vec![
                        format!(
                            "{} at {}:{} ({})",
                            RANK_DESC[hi as usize], path, hi_line, hi_desc
                        ),
                        "epoch protocol order within one barrier interval: drain -> \
                         minima -> stage -> publish -> barrier B0 (docs/engine.md)"
                            .to_string(),
                    ],
                    message,
                });
            }
            if top > hi {
                hi = top;
                hi_line = ev.line;
                hi_desc = ev.desc.clone();
            }
        }

        // 4. Shard-escape: phase-ranked code mutating another shard's
        // state directly instead of going through the mailbox API.
        if ranks[i] != 0 {
            for c in &cg.sites[i] {
                if c.kind != CallKind::Method || !MUTATORS.contains(&c.name.as_str()) {
                    continue;
                }
                let chain = receiver_chain(toks, c.tok);
                if chain.starts_with("shards[_]") {
                    out.push(Diagnostic {
                        pass: "epoch-phase",
                        code: "phase.shard-escape".to_string(),
                        file: path.clone(),
                        line: c.line,
                        function: f.display_name(),
                        message: format!(
                            "cross-shard mutable access `{}.{}(..)` bypasses the \
                             mailbox handoff",
                            chain, c.name
                        ),
                        notes: vec!["phase-ranked code may only touch peer shards through \
                             BatchRing publish/take or the inbox mutex (docs/engine.md)"
                            .to_string()],
                    });
                }
            }
        }
    }
    (out, ranked_in_scope)
}

fn in_scope(ws: &Workspace, path: &str) -> bool {
    ws.synthetic || path == "crates/core/src/engine.rs"
}

/// Classify one call site as a phase anchor. Receiver-chain checks keep
/// name collisions out: `Option::take`, `Arena::take` and `Vec::push`
/// onto unrelated receivers carry no rank.
fn anchor_rank(toks: &[crate::lexer::Tok], c: &crate::parse::CallSite) -> Option<u8> {
    match (c.kind, c.name.as_str()) {
        (CallKind::Method | CallKind::Path, "peek_time") => Some(1),
        (CallKind::Method, "take") => ring_like(&receiver_chain(toks, c.tok)).then_some(0),
        (CallKind::Method, "publish") => ring_like(&receiver_chain(toks, c.tok)).then_some(3),
        (CallKind::Method, "push" | "push_back" | "extend" | "extend_from_slice" | "append") => {
            staging_like(&receiver_chain(toks, c.tok)).then_some(2)
        }
        _ => None,
    }
}

/// Does any segment of the receiver chain name a mailbox ring?
fn ring_like(chain: &str) -> bool {
    segments(chain).any(|seg| {
        seg == "ring" || seg == "rings" || seg.ends_with("_ring") || seg.ends_with("_rings")
    })
}

/// Does any segment name the outbox staging side of the mailbox?
fn staging_like(chain: &str) -> bool {
    segments(chain).any(|seg| {
        seg == "outbox"
            || seg == "outboxes"
            || seg.ends_with("_outbox")
            || seg == "staging"
            || seg == "inbox"
            || seg == "inboxes"
    })
}

fn segments(chain: &str) -> impl Iterator<Item = &str> {
    chain
        .split('.')
        .map(|seg| seg.trim_end_matches("[_]").trim_end_matches("(_)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn correct_epoch_order_is_clean() {
        let d = diags(
            "
            impl Worker {
                fn run(&mut self) {
                    loop {
                        self.ring.take(&mut self.scratch);
                        let h = self.queue.peek_time();
                        self.outbox.push(h);
                        self.ring.publish(&mut self.outbox);
                    }
                }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn publish_before_drain_is_producer_after_barrier() {
        let d = diags(
            "
            impl Worker {
                fn bad(&mut self) {
                    self.ring.publish(&mut self.outbox);
                    self.ring.take(&mut self.scratch);
                }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "phase.producer-after-barrier");
    }

    #[test]
    fn drain_after_peek_is_drain_after_minima() {
        let d = diags(
            "
            impl Worker {
                fn bad(&mut self) {
                    let h = self.queue.peek_time();
                    self.ring.take(&mut self.scratch);
                    drop(h);
                }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "phase.drain-after-minima");
    }

    #[test]
    fn loop_back_edge_resets_the_interval() {
        let d = diags(
            "
            impl Worker {
                fn run(&mut self) {
                    for _ in 0..4 {
                        self.ring.take(&mut self.scratch);
                        self.ring.publish(&mut self.outbox);
                    }
                }
            }
            ",
        );
        assert!(d.is_empty(), "publish then loop-reset then take: {d:?}");
    }

    #[test]
    fn complete_epoch_machines_are_neutral_at_call_sites() {
        let d = diags(
            "
            impl Worker {
                fn epoch(&mut self) {
                    self.ring.take(&mut self.scratch);
                    self.ring.publish(&mut self.outbox);
                }
                fn driver(&mut self) {
                    self.epoch();
                    self.epoch();
                }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn option_take_is_not_a_drain() {
        let d = diags(
            "
            impl Worker {
                fn fine(&mut self) {
                    let h = self.queue.peek_time();
                    let v = self.slot.take();
                    drop((h, v));
                }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn shard_escape_is_flagged_in_ranked_code() {
        let d = diags(
            "
            impl Worker {
                fn bad(&mut self, dst: usize) {
                    self.ring.take(&mut self.scratch);
                    self.shards[dst].queue.push(1);
                }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "phase.shard-escape");
    }

    #[test]
    fn unranked_setup_code_may_touch_shards() {
        let d = diags(
            "
            impl Engine {
                fn wire(&mut self, dst: usize) {
                    self.shards[dst].out_peers.push(1);
                }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
