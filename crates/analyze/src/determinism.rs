//! Pass 5 — determinism bans.
//!
//! The simulator's contract is bit-identical results for identical
//! inputs — the parallel fabric's conformance suite and the replay
//! tooling both depend on it. Three things silently break that contract
//! and none of them is a type error:
//!
//! - **wallclock** (`Instant::now`, `SystemTime::now`, `thread::sleep`):
//!   real time leaking into simulated time. `clippy.toml` already bans
//!   the method calls workspace-wide; this pass keeps the ban inside the
//!   analyzer's single report and covers fixture code clippy never sees.
//! - **entropy-seeded randomness** (`thread_rng`, `from_entropy`,
//!   `rand::random`, `RandomState`): seeded generators (`from_seed`,
//!   `seed_from_u64`) are fine and are not flagged.
//! - **`HashMap`/`HashSet` iteration**: iteration order varies run to
//!   run. Keyed access (`get`, `insert`, `entry`, `remove`) is fine;
//!   `.iter()`, `.keys()`, `.values()`, `.drain()` and `for .. in &map`
//!   are flagged. Containers are found by declared type — struct fields,
//!   `let` annotations/initialisers and parameters — not by name.
//!
//! The bench harness and xtask (see [`crate::EXEMPT_CRATES`]) and all
//! test code are exempt: benches legitimately time things, proptest owns
//! its seeding, and tests may iterate freely.

use crate::lexer::{Tok, TokKind};
use crate::parse::{call_sites, CallKind};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::BTreeSet;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];
const ENTROPY_CALLS: &[&str] = &["thread_rng", "from_entropy", "random"];

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    // Hash-typed struct fields anywhere in the workspace.
    let hash_fields: BTreeSet<&str> = ws
        .fields
        .iter()
        .filter(|f| HASH_TYPES.contains(&f.ty.split(' ').next().unwrap_or("")))
        .map(|f| f.name.as_str())
        .collect();

    let mut out = Vec::new();
    for f in &ws.fns {
        if ws.exempt(f) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let file = ws.file(f);
        let toks = &file.toks;
        let hash_names = hash_locals(f, toks, &hash_fields);

        for c in call_sites(toks, body) {
            match c.kind {
                CallKind::Path => {
                    let q = c.qual.as_deref();
                    if c.name == "now" && matches!(q, Some("Instant") | Some("SystemTime")) {
                        out.push(diag(
                            "det.wallclock",
                            f,
                            file,
                            c.line,
                            format!("wallclock read `{}::now()` in simulation code", q.unwrap()),
                            "derive timing from SimTime; real time is bench-only",
                        ));
                    } else if c.name == "sleep" && q == Some("thread") {
                        out.push(diag(
                            "det.wallclock",
                            f,
                            file,
                            c.line,
                            "`thread::sleep` in simulation code".to_string(),
                            "model latency as simulated Duration, never host delay",
                        ));
                    } else if ENTROPY_CALLS.contains(&c.name.as_str())
                        || (c.name == "new" && q == Some("RandomState"))
                    {
                        out.push(diag(
                            "det.randomness",
                            f,
                            file,
                            c.line,
                            format!("entropy-seeded randomness (`{}`)", c.name),
                            "use a fixed seed (`from_seed`/`seed_from_u64`) so runs replay",
                        ));
                    }
                }
                CallKind::Method => {
                    if ENTROPY_CALLS.contains(&c.name.as_str()) {
                        out.push(diag(
                            "det.randomness",
                            f,
                            file,
                            c.line,
                            format!("entropy-seeded randomness (`.{}()`)", c.name),
                            "use a fixed seed (`from_seed`/`seed_from_u64`) so runs replay",
                        ));
                    } else if ITER_METHODS.contains(&c.name.as_str())
                        && receiver_is_hash(toks, c.tok, &hash_names)
                    {
                        out.push(diag(
                            "det.hashmap-iter",
                            f,
                            file,
                            c.line,
                            format!(
                                "`.{}()` on a HashMap/HashSet: iteration order is unstable",
                                c.name
                            ),
                            "use a BTreeMap/BTreeSet, or collect-and-sort before iterating",
                        ));
                    }
                }
                CallKind::Macro => {}
            }
        }

        // `for pat in <expr> {` iterating a hash container directly.
        let (bs, be) = body;
        let mut k = bs;
        while k < be.min(toks.len()) {
            if toks[k].is_ident("for") {
                if let Some(line) = for_loop_over_hash(toks, k, be, &hash_names) {
                    out.push(diag(
                        "det.hashmap-iter",
                        f,
                        file,
                        line,
                        "`for` loop over a HashMap/HashSet: iteration order is unstable"
                            .to_string(),
                        "use a BTreeMap/BTreeSet, or collect-and-sort before iterating",
                    ));
                }
            }
            k += 1;
        }
    }
    out
}

fn diag(
    code: &str,
    f: &crate::parse::FnDef,
    file: &crate::parse::SourceFile,
    line: u32,
    message: String,
    hint: &str,
) -> Diagnostic {
    Diagnostic {
        pass: "determinism",
        code: code.to_string(),
        file: file.path.clone(),
        line,
        function: f.display_name(),
        message,
        notes: vec![hint.to_string()],
    }
}

/// Hash-typed locals and parameters of one function.
fn hash_locals(
    f: &crate::parse::FnDef,
    toks: &[Tok],
    hash_fields: &BTreeSet<&str>,
) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = hash_fields.iter().map(|s| s.to_string()).collect();
    let (ss, se) = f.sig;
    let mut k = ss;
    while k + 2 < se.min(toks.len()) {
        if toks[k].kind == TokKind::Ident
            && toks[k + 1].is(":")
            && type_mentions_hash(&toks[k + 2..se])
        {
            names.insert(toks[k].text.clone());
        }
        k += 1;
    }
    let Some((bs, be)) = f.body else {
        return names;
    };
    let mut k = bs;
    while k < be.min(toks.len()) {
        if toks[k].is_ident("let") {
            let mut n = k + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if toks.get(n).map(|t| t.kind) == Some(TokKind::Ident) {
                let name = &toks[n];
                // `let x: HashMap<..>` or `let x = HashMap::new()` — scan
                // to the end of the statement for the type name.
                let mut m = n + 1;
                let mut depth = 0i32;
                let mut is_hash = false;
                while m < be.min(toks.len()) {
                    match toks[m].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        ";" if depth == 0 => break,
                        s if HASH_TYPES.contains(&s) => is_hash = true,
                        _ => {}
                    }
                    m += 1;
                }
                if is_hash {
                    names.insert(name.text.clone());
                }
                k = m;
                continue;
            }
        }
        k += 1;
    }
    names
}

/// Does a type snippet name HashMap/HashSet at its head (past `&`/`mut`)?
fn type_mentions_hash(toks: &[Tok]) -> bool {
    for t in toks {
        match t.text.as_str() {
            "&" | "mut" | "dyn" => continue,
            s if HASH_TYPES.contains(&s) => return true,
            _ => return false,
        }
    }
    false
}

/// Is the receiver chain of the iter-method call at `tok` a known hash
/// container (last chain component before the method)?
fn receiver_is_hash(toks: &[Tok], tok: usize, hash_names: &BTreeSet<String>) -> bool {
    // toks[tok] is the method name, toks[tok-1] the `.`.
    tok.checked_sub(2)
        .map(|k| &toks[k])
        .is_some_and(|t| t.kind == TokKind::Ident && hash_names.contains(&t.text))
}

/// For a `for` keyword at `k`, does the iterated expression name a hash
/// container that is consumed directly (or via an iter method)?
fn for_loop_over_hash(
    toks: &[Tok],
    k: usize,
    end: usize,
    hash_names: &BTreeSet<String>,
) -> Option<u32> {
    // Find `in` at nesting depth 0, then the expression up to `{`.
    let mut depth = 0i32;
    let mut m = k + 1;
    let mut in_at = None;
    while m < end.min(toks.len()) {
        match toks[m].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => {
                in_at = Some(m);
                break;
            }
            "{" => return None,
            _ => {}
        }
        m += 1;
    }
    let start = in_at? + 1;
    let mut m = start;
    let mut depth = 0i32;
    while m < end.min(toks.len()) {
        let t = &toks[m];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return None,
            _ if t.kind == TokKind::Ident && hash_names.contains(&t.text) => {
                // Direct iteration (`&map`, `map`, `self.map`) or via an
                // iter method; keyed access (`map.get(..)`) is fine.
                let next = toks.get(m + 1);
                let direct = next.is_none_or(|n| n.is("{"));
                let via_iter = next.is_some_and(|n| n.is("."))
                    && toks
                        .get(m + 2)
                        .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()));
                if direct || via_iter {
                    return Some(t.line);
                }
                m += 1;
                continue;
            }
            _ => {}
        }
        m += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn wallclock_is_flagged() {
        let d = diags("fn f() -> Instant { Instant::now() }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "det.wallclock");
    }

    #[test]
    fn entropy_randomness_is_flagged_seeded_is_not() {
        let d = diags(
            "
            fn bad() { let mut rng = thread_rng(); rng.fill(&mut [0u8; 4]); }
            fn good() { let rng = StdRng::seed_from_u64(42); drop(rng); }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "det.randomness");
        assert_eq!(d[0].function, "bad");
    }

    #[test]
    fn hashmap_iteration_is_flagged_keyed_access_is_not() {
        let d = diags(
            "
            struct T { index: HashMap<u64, u32> }
            impl T {
                fn bad(&self) -> u64 { self.index.keys().sum() }
                fn good(&self, k: u64) -> Option<&u32> { self.index.get(&k) }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "det.hashmap-iter");
        assert_eq!(d[0].function, "T::bad");
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let d = diags(
            "
            fn f(map: &HashMap<u64, u32>) -> u64 {
                let mut sum = 0;
                for (k, v) in map {
                    sum += k + *v as u64;
                }
                sum
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "det.hashmap-iter");
    }

    #[test]
    fn vec_iteration_is_clean() {
        let d = diags(
            "
            fn f(v: &Vec<u64>) -> u64 {
                let mut sum = 0;
                for x in v.iter() { sum += x; }
                sum
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = diags(
            "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let x = Instant::now(); drop(x); }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
