//! Intraprocedural control-flow graphs over the token stream.
//!
//! The six existing passes are either interprocedural reachability over
//! [`crate::callgraph`] or token-order DFAs inside one body; neither can
//! see that an early `return` skips a `release()` call. This module
//! builds, per function body, a graph of *basic blocks* — each block a
//! list of contiguous token ranges (`segs`) — connected by edges for the
//! constructs that actually bend control flow in this workspace:
//!
//! * `if` / `else if` / `else` chains and `if let` (branch + merge);
//! * `match` (scrutinee and arm patterns/guards stay in the dispatch
//!   block, every arm body gets its own block, all arms merge);
//! * `loop` / `while` / `while let` / `for`, with a back-edge to the
//!   head so [`crate::dataflow`] knows where to widen, and labelled
//!   `break` / `continue` resolved through a loop-context stack;
//! * the early exits the linear-resource pass exists for: `return`,
//!   `?` (an edge to the exit block *and* a fall-through split), and
//!   implicit fall-off-the-end.
//!
//! Everything else — struct literals, closures, plain braces — is
//! carried as opaque tokens inside the current block. Macro invocations
//! keep their argument tokens in the block (so call sites inside
//! `assert!(ring.publish(..))` still anchor events) but are never
//! interpreted as control flow. Nested `fn` items are skipped entirely:
//! their bodies do not execute here.
//!
//! The builder is deliberately forgiving: on malformed input it degrades
//! to treating tokens as straight-line code, mirroring the lexer's
//! "never abort on code rustc accepts" rule.

use crate::lexer::{Tok, TokKind};
use crate::parse::skip_balanced;

/// Why an edge exists. The dataflow solver widens on `Back`; the
/// resource pass reports leaks on the three exit kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary forward flow (branch taken, merge, loop entry).
    Flow,
    /// Loop back-edge (`}` of a loop body, `continue`).
    Back,
    /// Explicit `return`.
    Return,
    /// The error path of a `?` operator.
    Question,
    /// Falling off the end of the function body.
    Implicit,
}

/// One directed edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: usize,
    pub kind: EdgeKind,
    /// Source line of the token that created the edge (for diagnostics).
    pub line: u32,
}

/// A basic block: zero or more contiguous token ranges, executed in
/// order, then the successor edges.
#[derive(Debug, Default)]
pub struct Block {
    /// Absolute `[start, end)` ranges into the file's token vector.
    pub segs: Vec<(usize, usize)>,
    pub succs: Vec<Edge>,
}

/// The graph for one function body.
#[derive(Debug)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Always block 0.
    pub entry: usize,
    /// The virtual exit block (no segs, no succs); every `return`, `?`
    /// error path and implicit fall-off targets it.
    pub exit: usize,
}

impl Cfg {
    /// Edges of `block` that target the exit block.
    pub fn exit_edges(&self, block: usize) -> impl Iterator<Item = &Edge> {
        self.blocks[block]
            .succs
            .iter()
            .filter(|e| e.to == self.exit)
    }
}

/// Build the CFG for a body token range *including* its braces (the
/// `FnDef::body` convention).
pub fn build(toks: &[Tok], body: (usize, usize)) -> Cfg {
    let (open, end) = body;
    let lo = (open + 1).min(end);
    let hi = end.saturating_sub(1).max(lo);
    let mut b = Builder {
        toks,
        blocks: vec![Block::default(), Block::default()],
        loops: Vec::new(),
    };
    let last = b.walk(0, lo, hi);
    let line = b.line(hi.saturating_sub(1));
    b.edge(last, EXIT, EdgeKind::Implicit, line);
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: EXIT,
    }
}

/// The virtual exit is always block 1 (created before any real block).
const EXIT: usize = 1;

struct LoopCtx {
    label: Option<String>,
    head: usize,
    after: usize,
}

struct Builder<'a> {
    toks: &'a [Tok],
    blocks: Vec<Block>,
    loops: Vec<LoopCtx>,
}

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind, line: u32) {
        self.blocks[from].succs.push(Edge { to, kind, line });
    }

    fn seg(&mut self, block: usize, a: usize, b: usize) {
        if a < b {
            self.blocks[block].segs.push((a, b));
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.toks
            .get(i.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn at(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.is(s))
    }

    /// Walk `toks[lo..hi)` starting in block `cur`; returns the block
    /// where flow falls off the end (possibly an unreachable block with
    /// no in-edges, after a diverging construct).
    fn walk(&mut self, mut cur: usize, lo: usize, hi: usize) -> usize {
        let hi = hi.min(self.toks.len()).max(lo);
        let mut i = lo;
        let mut seg = lo;
        while i < hi {
            let t = &self.toks[i];
            match (t.kind, t.text.as_str()) {
                // Macro invocation: keep the tokens, skip interpretation.
                (TokKind::Ident, _)
                    if self.at(i + 1, "!")
                        && self
                            .toks
                            .get(i + 2)
                            .is_some_and(|t| matches!(t.text.as_str(), "(" | "[" | "{")) =>
                {
                    let (l, r) = match self.toks[i + 2].text.as_str() {
                        "(" => ("(", ")"),
                        "[" => ("[", "]"),
                        _ => ("{", "}"),
                    };
                    i = skip_balanced(self.toks, i + 2, l, r).min(hi);
                }
                // Nested item: its body does not run here.
                (TokKind::Ident, "fn") => {
                    self.seg(cur, seg, i);
                    i = self.skip_fn_item(i, hi);
                    seg = i;
                }
                (TokKind::Ident, "if") => {
                    self.seg(cur, seg, i);
                    let (merge, next) = self.handle_if(cur, i, hi);
                    cur = merge;
                    i = next;
                    seg = i;
                }
                (TokKind::Ident, "match") => {
                    self.seg(cur, seg, i);
                    let (merge, next) = self.handle_match(cur, i, hi);
                    cur = merge;
                    i = next;
                    seg = i;
                }
                (TokKind::Ident, "loop" | "while" | "for") => {
                    self.seg(cur, seg, i);
                    let (after, next) = self.handle_loop(cur, i, hi, None);
                    cur = after;
                    i = next;
                    seg = i;
                }
                // `'label: loop` — capture the label for break/continue.
                (TokKind::Lifetime, _)
                    if self.at(i + 1, ":")
                        && self.toks.get(i + 2).is_some_and(|t| {
                            matches!(t.text.as_str(), "loop" | "while" | "for")
                        }) =>
                {
                    self.seg(cur, seg, i);
                    let label = Some(t.text.clone());
                    let (after, next) = self.handle_loop(cur, i + 2, hi, label);
                    cur = after;
                    i = next;
                    seg = i;
                }
                (TokKind::Ident, "return") => {
                    self.seg(cur, seg, i + 1);
                    let j = self.scan_expr(i + 1, hi, false);
                    cur = self.walk(cur, i + 1, j);
                    self.edge(cur, EXIT, EdgeKind::Return, t.line);
                    cur = self.new_block();
                    i = j;
                    seg = i;
                }
                (TokKind::Ident, "break") => {
                    self.seg(cur, seg, i + 1);
                    let line = t.line;
                    let mut j = i + 1;
                    let mut label = None;
                    if self.toks.get(j).map(|t| t.kind) == Some(TokKind::Lifetime) {
                        label = Some(self.toks[j].text.clone());
                        j += 1;
                    }
                    let k = self.scan_expr(j, hi, true);
                    cur = self.walk(cur, j, k);
                    if let Some(after) = self.loop_target(&label).map(|c| c.after) {
                        self.edge(cur, after, EdgeKind::Flow, line);
                    }
                    cur = self.new_block();
                    i = k;
                    seg = i;
                }
                (TokKind::Ident, "continue") => {
                    self.seg(cur, seg, i + 1);
                    let line = t.line;
                    let mut j = i + 1;
                    let mut label = None;
                    if self.toks.get(j).map(|t| t.kind) == Some(TokKind::Lifetime) {
                        label = Some(self.toks[j].text.clone());
                        j += 1;
                    }
                    if let Some(head) = self.loop_target(&label).map(|c| c.head) {
                        self.edge(cur, head, EdgeKind::Back, line);
                    }
                    cur = self.new_block();
                    i = j;
                    seg = i;
                }
                // `let ... else { diverge }`: a standalone `else` (one the
                // `if` handler did not consume) introduces a diverging
                // alternative block plus the normal continuation.
                (TokKind::Ident, "else") if self.at(i + 1, "{") => {
                    self.seg(cur, seg, i);
                    let bend = skip_balanced(self.toks, i + 1, "{", "}").min(hi.max(i + 2));
                    let alt = self.new_block();
                    self.edge(cur, alt, EdgeKind::Flow, t.line);
                    let aend = self.walk(alt, i + 2, bend.saturating_sub(1));
                    let cont = self.new_block();
                    self.edge(cur, cont, EdgeKind::Flow, t.line);
                    // The else body of let-else must diverge; if our walk
                    // did not prove it, merge conservatively.
                    self.edge(aend, cont, EdgeKind::Flow, t.line);
                    cur = cont;
                    i = bend;
                    seg = i;
                }
                (TokKind::Punct, "?") => {
                    self.seg(cur, seg, i + 1);
                    self.edge(cur, EXIT, EdgeKind::Question, t.line);
                    let next = self.new_block();
                    self.edge(cur, next, EdgeKind::Flow, t.line);
                    cur = next;
                    i += 1;
                    seg = i;
                }
                _ => i += 1,
            }
        }
        self.seg(cur, seg, hi);
        cur
    }

    /// Innermost loop, or the one carrying `label`.
    fn loop_target(&self, label: &Option<String>) -> Option<&LoopCtx> {
        match label {
            Some(l) => self
                .loops
                .iter()
                .rev()
                .find(|c| c.label.as_deref() == Some(l)),
            None => self.loops.last(),
        }
    }

    /// `fn name(..) -> T { .. }` nested inside a body: index past it.
    fn skip_fn_item(&self, i: usize, hi: usize) -> usize {
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < hi {
            match self.toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return skip_balanced(self.toks, j, "{", "}").min(hi),
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// Find the `{` opening the body of an `if`/`match`/`while`/`for`
    /// header starting at `start`. Handles `if let PAT =` / `while let
    /// PAT =` (struct patterns may contain `{` before the `=`) and `for
    /// PAT in` by skipping the pattern first; after that, Rust's ban on
    /// struct literals in condition position makes the first depth-zero
    /// `{` the body.
    fn find_body_open(&self, start: usize, hi: usize) -> usize {
        let mut j = start;
        let mut depth = 0i32;
        if self.at(j, "let") {
            // Skip `PAT =` (the pattern may contain braces).
            j += 1;
            while j < hi {
                match self.toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth <= 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            depth = 0;
        } else if self.at(j.wrapping_sub(1), "for") {
            // `for PAT in ...`: skip the pattern to `in`.
            while j < hi {
                match self.toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "in" if depth <= 0 && self.toks[j].kind == TokKind::Ident => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            depth = 0;
        }
        while j < hi {
            match self.toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => return j,
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// Expression scan for `return`/`break` values: index of the
    /// terminating token (`;`, end of range, enclosing delimiter, or —
    /// when `stop_comma` — a depth-zero `,` such as a match-arm end).
    fn scan_expr(&self, start: usize, hi: usize, stop_comma: bool) -> usize {
        let mut j = start;
        let mut depth = 0i32;
        while j < hi {
            match self.toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return j,
                "," if depth == 0 && stop_comma => return j,
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// `if` / `else if` / `else` chain starting at `i` (the `if` token).
    /// Conditions are walked (they can contain `?`); every branch gets a
    /// block; all branch ends merge. Returns (merge block, next index).
    fn handle_if(&mut self, mut cur: usize, mut i: usize, hi: usize) -> (usize, usize) {
        let mut ends: Vec<usize> = Vec::new();
        loop {
            let body_open = self.find_body_open(i + 1, hi);
            if !self.at(body_open, "{") {
                // Malformed: degrade to straight-line tokens.
                self.seg(cur, i, (i + 1).min(hi));
                return (cur, (i + 1).min(hi));
            }
            cur = self.walk(cur, i + 1, body_open);
            let body_end = skip_balanced(self.toks, body_open, "{", "}").min(hi.max(body_open));
            let line = self.line(body_open);
            let then_blk = self.new_block();
            self.edge(cur, then_blk, EdgeKind::Flow, line);
            let then_end = self.walk(then_blk, body_open + 1, body_end.saturating_sub(1));
            ends.push(then_end);
            i = body_end;
            if i < hi && self.toks[i].is_ident("else") {
                if self.toks.get(i + 1).is_some_and(|t| t.is_ident("if")) {
                    // `else if`: the next condition is evaluated on the
                    // not-taken path; approximating it into `cur` only
                    // reorders events the pass already treats as "may".
                    i += 1;
                    continue;
                }
                if self.at(i + 1, "{") {
                    let e_end = skip_balanced(self.toks, i + 1, "{", "}").min(hi.max(i + 2));
                    let e_blk = self.new_block();
                    self.edge(cur, e_blk, EdgeKind::Flow, self.line(i));
                    let eend = self.walk(e_blk, i + 2, e_end.saturating_sub(1));
                    ends.push(eend);
                    i = e_end;
                    return (self.merge(ends, self.line(i.saturating_sub(1))), i);
                }
            }
            // No else: not-taken path falls through from the condition.
            ends.push(cur);
            return (self.merge(ends, self.line(i.saturating_sub(1))), i);
        }
    }

    fn merge(&mut self, ends: Vec<usize>, line: u32) -> usize {
        let m = self.new_block();
        for e in ends {
            self.edge(e, m, EdgeKind::Flow, line);
        }
        m
    }

    /// `match` starting at `i`. Scrutinee tokens are walked into `cur`;
    /// arm patterns and guards stay in `cur` (they are evaluated during
    /// dispatch); every arm body gets a block; all arms merge.
    fn handle_match(&mut self, mut cur: usize, i: usize, hi: usize) -> (usize, usize) {
        let body_open = self.find_body_open(i + 1, hi);
        if !self.at(body_open, "{") {
            self.seg(cur, i, (i + 1).min(hi));
            return (cur, (i + 1).min(hi));
        }
        cur = self.walk(cur, i + 1, body_open);
        let body_end = skip_balanced(self.toks, body_open, "{", "}").min(hi.max(body_open));
        let inner_end = body_end.saturating_sub(1);
        let merge = self.new_block();
        let mut k = body_open + 1;
        let mut any_arm = false;
        while k < inner_end {
            // Pattern (+ optional guard) up to `=>` at depth zero.
            let pat_start = k;
            let mut depth = 0i32;
            while k < inner_end {
                match self.toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= inner_end {
                // Trailing junk after the last arm: keep it in the
                // dispatch block and stop.
                self.seg(cur, pat_start, inner_end);
                break;
            }
            self.seg(cur, pat_start, k);
            let line = self.line(k);
            k += 1; // past `=>`
            any_arm = true;
            let arm = self.new_block();
            self.edge(cur, arm, EdgeKind::Flow, line);
            let arm_end;
            if self.at(k, "{") {
                let aend = skip_balanced(self.toks, k, "{", "}").min(inner_end.max(k + 1));
                arm_end = self.walk(arm, k + 1, aend.saturating_sub(1));
                k = aend;
            } else {
                let e = self.scan_expr(k, inner_end, true);
                arm_end = self.walk(arm, k, e);
                k = e;
            }
            self.edge(
                arm_end,
                merge,
                EdgeKind::Flow,
                self.line(k.saturating_sub(1)),
            );
            if self.at(k, ",") {
                k += 1;
            }
        }
        if !any_arm {
            self.edge(cur, merge, EdgeKind::Flow, self.line(body_open));
        }
        (merge, body_end)
    }

    /// `loop` / `while` / `while let` / `for` starting at `i` (the
    /// keyword token). Returns (after block, next index).
    fn handle_loop(
        &mut self,
        cur: usize,
        i: usize,
        hi: usize,
        label: Option<String>,
    ) -> (usize, usize) {
        let kw = self.toks[i].text.clone();
        let body_open = if kw == "loop" {
            i + 1
        } else {
            self.find_body_open(i + 1, hi)
        };
        if !self.at(body_open, "{") {
            self.seg(cur, i, (i + 1).min(hi));
            return (cur, (i + 1).min(hi));
        }
        let line = self.line(i);
        let head = self.new_block();
        self.edge(cur, head, EdgeKind::Flow, line);
        // Condition / iterator tokens re-evaluate on every iteration, so
        // they live in the head (the back-edge target).
        let cond_end = if kw == "loop" {
            head
        } else {
            self.walk(head, i + 1, body_open)
        };
        let after = self.new_block();
        let body_end = skip_balanced(self.toks, body_open, "{", "}").min(hi.max(body_open));
        let body = self.new_block();
        self.edge(cond_end, body, EdgeKind::Flow, line);
        if kw != "loop" {
            // `loop` exits only through `break`.
            self.edge(cond_end, after, EdgeKind::Flow, line);
        }
        self.loops.push(LoopCtx { label, head, after });
        let bend = self.walk(body, body_open + 1, body_end.saturating_sub(1));
        self.loops.pop();
        self.edge(
            bend,
            head,
            EdgeKind::Back,
            self.line(body_end.saturating_sub(1)),
        );
        (after, body_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_file, SourceFile};

    fn cfg_of(src: &str) -> (SourceFile, Cfg) {
        let f = SourceFile::new("t.rs".into(), "fixture".into(), src);
        let p = parse_file(0, &f);
        let body = p.fns[0].body.expect("fixture fn has a body");
        let c = build(&f.toks, body);
        (f, c)
    }

    fn edges_of_kind(c: &Cfg, kind: EdgeKind) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, b) in c.blocks.iter().enumerate() {
            for e in &b.succs {
                if e.kind == kind {
                    out.push((i, e.to));
                }
            }
        }
        out
    }

    /// Space-joined text of a block's segments.
    fn block_text(f: &SourceFile, c: &Cfg, block: usize) -> String {
        let mut s = String::new();
        for &(a, b) in &c.blocks[block].segs {
            for t in &f.toks[a..b] {
                if !s.is_empty() {
                    s.push(' ');
                }
                s.push_str(&t.text);
            }
        }
        s
    }

    /// Block that carries `needle` somewhere in its segment text.
    fn block_containing(f: &SourceFile, c: &Cfg, needle: &str) -> usize {
        (0..c.blocks.len())
            .find(|&b| block_text(f, c, b).contains(needle))
            .unwrap_or_else(|| panic!("no block contains {needle:?}"))
    }

    #[test]
    fn question_mark_splits_the_block_and_edges_to_exit() {
        let (f, c) = cfg_of("fn f() -> Result<(), ()> { g()?; h(); Ok(()) }");
        let q = edges_of_kind(&c, EdgeKind::Question);
        assert_eq!(q.len(), 1, "one ? operator, one error edge");
        let (src, dst) = q[0];
        assert_eq!(dst, c.exit);
        // The error edge leaves the block holding `g ( )`, before `h`.
        assert!(block_text(&f, &c, src).contains("g ( )"));
        assert!(!block_text(&f, &c, src).contains("h"));
        // The success path continues into a separate block that reaches
        // the implicit exit.
        let cont = block_containing(&f, &c, "h ( )");
        assert_ne!(cont, src);
        assert_eq!(edges_of_kind(&c, EdgeKind::Implicit).len(), 1);
    }

    #[test]
    fn match_with_guards_keeps_guards_in_dispatch_and_merges_arms() {
        let (f, c) = cfg_of(
            "fn f(x: Option<u32>) -> u32 {
                match x {
                    Some(v) if v > 3 => big(v),
                    Some(v) => small(v),
                    None => 0,
                }
            }",
        );
        // Guard tokens are evaluated during dispatch, not in an arm.
        let dispatch = block_containing(&f, &c, "v > 3");
        assert!(block_text(&f, &c, dispatch).contains("None"));
        // Three arms: three Flow edges out of the dispatch block.
        let arm_edges: Vec<_> = c.blocks[dispatch]
            .succs
            .iter()
            .filter(|e| e.kind == EdgeKind::Flow)
            .collect();
        assert_eq!(arm_edges.len(), 3, "one edge per arm");
        // Every arm body lands in its own block, and all of them reach a
        // common merge block.
        let big = block_containing(&f, &c, "big ( v )");
        let small = block_containing(&f, &c, "small ( v )");
        assert_ne!(big, small);
        let target = |b: usize| c.blocks[b].succs.first().map(|e| e.to);
        assert_eq!(target(big), target(small), "arms merge");
    }

    #[test]
    fn loop_with_break_value_gets_a_back_edge_and_an_exit_path() {
        let (f, c) = cfg_of(
            "fn f() -> u32 {
                let mut i = 0;
                let v = loop {
                    i += 1;
                    if done(i) { break i * 2; }
                };
                use_it(v)
            }",
        );
        let back = edges_of_kind(&c, EdgeKind::Back);
        assert_eq!(back.len(), 1, "loop body wraps to the head");
        // The break value is evaluated in the block that jumps out.
        let brk = block_containing(&f, &c, "i * 2");
        let after = c.blocks[brk]
            .succs
            .iter()
            .find(|e| e.kind == EdgeKind::Flow)
            .expect("break edge")
            .to;
        // The after-loop block flows onward to the code using the value.
        let use_blk = block_containing(&f, &c, "use_it ( v )");
        let mut seen = vec![after];
        let mut stack = vec![after];
        let mut reaches = false;
        while let Some(b) = stack.pop() {
            if b == use_blk {
                reaches = true;
                break;
            }
            for e in &c.blocks[b].succs {
                if !seen.contains(&e.to) {
                    seen.push(e.to);
                    stack.push(e.to);
                }
            }
        }
        assert!(reaches, "break lands after the loop");
        // And the infinite loop has no direct head -> after edge.
        let head = back[0].1;
        assert!(
            c.blocks[head].succs.iter().all(|e| e.to != after),
            "a bare loop only exits through break"
        );
    }

    #[test]
    fn early_return_and_fallthrough_both_reach_exit() {
        let (f, c) = cfg_of(
            "fn f(x: u32) -> u32 {
                if x == 0 { return 7; }
                x + 1
            }",
        );
        assert_eq!(edges_of_kind(&c, EdgeKind::Return).len(), 1);
        assert_eq!(edges_of_kind(&c, EdgeKind::Implicit).len(), 1);
        // The return value tokens stay in the returning block.
        let ret = block_containing(&f, &c, "7");
        assert!(c.blocks[ret].succs.iter().any(|e| e.to == c.exit));
    }

    #[test]
    fn while_let_and_continue_share_the_loop_head() {
        let (_, c) = cfg_of(
            "fn f(it: &mut I) {
                while let Some(x) = it.next() {
                    if skip(x) { continue; }
                    handle(x);
                }
            }",
        );
        let back = edges_of_kind(&c, EdgeKind::Back);
        assert_eq!(back.len(), 2, "loop-end wrap plus continue");
        assert_eq!(back[0].1, back[1].1, "both target the same head");
    }

    #[test]
    fn let_else_divergence_still_yields_a_continuation() {
        let (f, c) = cfg_of(
            "fn f(o: Option<u32>) -> u32 {
                let Some(v) = o else { return 0; };
                v + 1
            }",
        );
        assert_eq!(edges_of_kind(&c, EdgeKind::Return).len(), 1);
        // The continuation sees the binding's uses.
        let cont = block_containing(&f, &c, "v + 1");
        assert!(c.blocks[cont].succs.iter().any(|e| e.to == c.exit));
    }

    #[test]
    fn macros_and_nested_fns_do_not_confuse_the_walker() {
        let (f, c) = cfg_of(
            "fn f() {
                assert!(matches!(x, Some(_) if true), \"msg {}\", 1);
                fn helper() { if a { b(); } }
                tail();
            }",
        );
        // The macro's tokens stay available (for anchor events) ...
        let blk = block_containing(&f, &c, "assert");
        // ... and the nested fn's `if` created no branch blocks: the
        // macro block flows straight to the implicit exit.
        assert!(block_text(&f, &c, blk).contains("tail ( )"));
        assert_eq!(edges_of_kind(&c, EdgeKind::Implicit).len(), 1);
        assert_eq!(c.blocks[blk].succs.len(), 1);
    }
}
