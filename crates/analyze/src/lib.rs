//! `tcc-analyze` — AST-level static analysis for the TCCluster workspace.
//!
//! The workspace's correctness rests on invariants the type system cannot
//! see: hot paths must stay allocation-free *transitively*, the PDES
//! engine's mailbox locks must stay cycle-free, picosecond arithmetic
//! must not overflow silently, and simulation results must never depend
//! on wallclock, hash order or entropy. Substring scans (the previous
//! `cargo xtask lint` implementation) check none of this robustly: they
//! stop checking a function the moment it is renamed, and they cannot see
//! a hot function calling a helper that allocates.
//!
//! This crate parses every workspace crate with its own lexer and
//! item/expression parser (no rustc dependency — in the spirit of the
//! vendored loom/rayon shims), builds the intra-workspace call graph
//! **once** ([`callgraph`] — shared name resolution, generic fixpoint
//! propagation and path-finding BFS), builds intraprocedural CFGs on
//! demand ([`cfg`] + the [`dataflow`] worklist solver), and runs seven
//! passes:
//!
//! | pass | module | checks |
//! |---|---|---|
//! | `alloc-reachability` | [`alloc`] | `#[cfg_attr(lint, tcc_no_alloc)]` functions never *transitively* reach an allocating call |
//! | `lock-order` | [`locks`] | the may-hold-while-acquiring graph over `Mutex::lock` sites is acyclic |
//! | `time-arith` | [`timearith`] | raw `+`/`-`/`*` on picosecond-valued expressions use `checked_`/`saturating_` forms or a blessed newtype op |
//! | `determinism` | [`determinism`] | no wallclock, no `HashMap`/`HashSet` iteration, no entropy-seeded randomness in simulation code |
//! | `panic-freedom` | [`panics`] | `#[cfg_attr(lint, tcc_no_panic)]` functions never *transitively* reach `unwrap`/`expect`/`panic!`-family sites |
//! | `epoch-phase` | [`phase`] | the engine's epoch machine keeps drain → minima → stage → publish order and never bypasses the mailbox handoff |
//! | `linear-resource` | [`resource`] | `#[cfg_attr(lint, tcc_linear(kind))]` functions balance acquire/release anchors (credits, SrcTags, arena handles, batches) on *every* CFG path |
//!
//! Escape hatches are explicit and auditable: `#[cfg_attr(lint,
//! tcc_alloc_ok)]` marks an amortized/cold allocation the reachability
//! pass may stop at, `#[cfg_attr(lint, tcc_panic_ok)]` a reviewed
//! deliberate protocol panic (kept honest by `panic.stale-ok`),
//! `#[cfg_attr(lint, tcc_transfer_ok)]` a reviewed ownership handoff
//! the resource pass may exit holding (kept honest by
//! `resource.stale-ok`), and a `// tcc-analyze: allow(<code>)` comment
//! on (or immediately above) a flagged line suppresses that one
//! diagnostic.
//! Every run produces a [`report::Report`], which `cargo xtask lint`
//! serialises to `LINT_report.json` (schema 3: per-pass counts,
//! baselines and optional per-pass timings, machine-diffable; the
//! diagnostics list is sorted and deduplicated, so serialisation is
//! byte-stable across runs). See `docs/static-analysis.md`.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod determinism;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod parse;
pub mod phase;
pub mod report;
pub mod resource;
pub mod timearith;

use parse::{parse_file, FnDef, Parsed, SourceFile};
use report::Report;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// A loaded-and-parsed source tree the passes run over.
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnDef>,
    pub fields: Vec<parse::FieldDef>,
    /// Built by [`Workspace::from_sources`] (fixture tests): passes whose
    /// production scope is a file subset widen to every file.
    pub synthetic: bool,
    /// Crate dir-name → dir-names whose items that crate's code can see
    /// (itself plus transitive path dependencies, from the Cargo.tomls).
    /// Name-based call resolution must not cross into crates the caller
    /// cannot even import — `ht`'s `release` calling a `put` must never
    /// resolve to `middleware`'s `GlobalArray::put`. Empty for fixture
    /// workspaces (everything visible).
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

/// Crates whose sources are loaded but exempt from the determinism and
/// alloc passes: the bench harness is the one legitimate wallclock (and
/// counting-allocator) consumer, and xtask only shells out to cargo.
pub const EXEMPT_CRATES: &[&str] = &["bench", "xtask"];

impl Workspace {
    /// Load every `crates/*/src/**/*.rs` plus the top-level `src/` of the
    /// workspace at `root`. `vendor/`, `tests/`, `examples/` and
    /// `benches/` trees are not loaded: vendored shims are API stand-ins,
    /// and test/bench code allocates freely by design (in-source
    /// `#[cfg(test)]` modules are parsed but marked `is_test`).
    pub fn load_root(root: &Path) -> io::Result<Workspace> {
        let mut sources = Vec::new();
        // (dir-name, package-name, dep package names) per manifest.
        let mut manifests: Vec<(String, String, Vec<String>)> = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
                let (pkg, deps) = manifest_pkgs(&text);
                manifests.push((crate_name.clone(), pkg.unwrap_or_default(), deps));
            }
            let src_dir = dir.join("src");
            if src_dir.is_dir() {
                collect_rs(&src_dir, &mut |path, text| {
                    sources.push((rel(root, path), crate_name.clone(), text));
                })?;
            }
        }
        let top_src = root.join("src");
        if top_src.is_dir() {
            if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
                let (pkg, deps) = manifest_pkgs(&text);
                manifests.push((
                    "tccluster-suite".to_string(),
                    pkg.unwrap_or_else(|| "tccluster-suite".to_string()),
                    deps,
                ));
            }
            collect_rs(&top_src, &mut |path, text| {
                sources.push((rel(root, path), "tccluster-suite".to_string(), text));
            })?;
        }
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        let mut ws = Self::build(sources, false);
        ws.crate_deps = dep_closure(&manifests);
        Ok(ws)
    }

    /// Build a workspace from in-memory sources — the fixture-test entry
    /// point. Paths are arbitrary labels; crate name is `fixture`.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let owned = sources
            .iter()
            .map(|(p, s)| ((*p).to_string(), "fixture".to_string(), (*s).to_string()))
            .collect();
        Self::build(owned, true)
    }

    fn build(sources: Vec<(String, String, String)>, synthetic: bool) -> Workspace {
        let mut files = Vec::new();
        let mut fns = Vec::new();
        let mut fields = Vec::new();
        for (path, crate_name, text) in sources {
            let file = SourceFile::new(path, crate_name, &text);
            let idx = files.len();
            let Parsed { fns: f, fields: fd } = parse_file(idx, &file);
            fns.extend(f);
            fields.extend(fd);
            files.push(file);
        }
        Workspace {
            files,
            fns,
            fields,
            synthetic,
            crate_deps: BTreeMap::new(),
        }
    }

    pub fn file(&self, f: &FnDef) -> &SourceFile {
        &self.files[f.file]
    }

    /// Is this function part of an exempt crate or test-only code?
    pub fn exempt(&self, f: &FnDef) -> bool {
        f.is_test || EXEMPT_CRATES.contains(&self.files[f.file].crate_name.as_str())
    }

    /// May code in `from_crate` name items of `to_crate`? True within a
    /// crate, for fixture workspaces, and along (transitive) Cargo
    /// dependency edges.
    pub fn visible(&self, from_crate: &str, to_crate: &str) -> bool {
        if self.synthetic || from_crate == to_crate {
            return true;
        }
        match self.crate_deps.get(from_crate) {
            Some(seen) => seen.contains(to_crate),
            None => true,
        }
    }
}

/// Pull the `[package] name` and the candidate dependency package names
/// out of a manifest. Dependency detection is line-shaped (`pkg = {..}`,
/// `pkg.workspace = true`); non-package keys (`version`, `lto`, ...) are
/// harvested too but filtered out later against the real package list.
fn manifest_pkgs(text: &str) -> (Option<String>, Vec<String>) {
    let mut name = None;
    let mut deps = Vec::new();
    for line in text.lines() {
        let l = line.trim();
        if name.is_none() {
            if let Some(rest) = l.strip_prefix("name = \"") {
                if let Some(end) = rest.find('"') {
                    name = Some(rest[..end].to_string());
                }
            }
        }
        let head: String = l
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !head.is_empty() {
            let rest = &l[head.len()..];
            if rest.starts_with(".workspace") || rest.trim_start().starts_with('=') {
                deps.push(head);
            }
        }
    }
    (name, deps)
}

/// Transitive closure of the path-dependency graph, keyed by crate dir
/// name (each crate sees itself).
fn dep_closure(manifests: &[(String, String, Vec<String>)]) -> BTreeMap<String, BTreeSet<String>> {
    let pkg_to_dir: BTreeMap<&str, &str> = manifests
        .iter()
        .map(|(dir, pkg, _)| (pkg.as_str(), dir.as_str()))
        .collect();
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (dir, _, deps) in manifests {
        let set: BTreeSet<String> = deps
            .iter()
            .filter_map(|d| pkg_to_dir.get(d.as_str()))
            .map(|d| d.to_string())
            .chain(std::iter::once(dir.clone()))
            .collect();
        out.insert(dir.clone(), set);
    }
    loop {
        let mut changed = false;
        let dirs: Vec<String> = out.keys().cloned().collect();
        for dir in &dirs {
            let reach: BTreeSet<String> = out[dir]
                .iter()
                .filter_map(|d| out.get(d))
                .flatten()
                .cloned()
                .collect();
            let mine = out.get_mut(dir).expect("seeded");
            let before = mine.len();
            mine.extend(reach);
            changed |= mine.len() != before;
        }
        if !changed {
            break;
        }
    }
    out
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, sink: &mut dyn FnMut(&Path, String)) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, sink)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&p)?;
            sink(&p, text);
        }
    }
    Ok(())
}

/// Run all seven passes over one shared call graph and assemble the
/// report. Equivalent to [`run_all_timed`] without a clock: the report's
/// `timings_ms` stays `null`, which keeps the committed
/// `LINT_report.json` byte-stable across runs.
pub fn run_all(ws: &Workspace) -> Report {
    run_all_timed(ws, None)
}

/// A monotonic nanosecond clock, injected by the caller. The analyzer
/// itself must not read wallclock (its own determinism pass — and the
/// workspace-wide clippy disallowed-methods list — ban it), so timing
/// lives behind a fn pointer xtask supplies from the one exempt crate.
pub type PassClock = fn() -> u64;

/// Run all seven passes; with a clock, record per-pass wall time (plus
/// the shared call-graph build) into the report's `pass_nanos`.
pub fn run_all_timed(ws: &Workspace, clock: Option<PassClock>) -> Report {
    let marker_count = |m: &str| ws.fns.iter().filter(|f| f.has_marker(m)).count();
    let mut report = Report {
        files_scanned: ws.files.len(),
        functions_indexed: ws.fns.len(),
        no_alloc_annotations: marker_count("tcc_no_alloc"),
        alloc_ok_annotations: marker_count("tcc_alloc_ok"),
        no_panic_annotations: marker_count("tcc_no_panic"),
        panic_ok_annotations: marker_count("tcc_panic_ok"),
        linear_annotations: marker_count("tcc_linear"),
        transfer_ok_annotations: marker_count("tcc_transfer_ok"),
        acquire_annotations: marker_count("tcc_acquires"),
        release_annotations: marker_count("tcc_releases"),
        ..Report::default()
    };
    let mut last = clock.map(|c| c());
    let mut lap = |report: &mut Report, name: &'static str| {
        if let (Some(c), Some(prev)) = (clock, last) {
            let t = c();
            report.pass_nanos.push((name, t.saturating_sub(prev)));
            last = Some(t);
        }
    };
    let cg = callgraph::CallGraph::build(ws);
    lap(&mut report, "callgraph");
    report.diagnostics.extend(alloc::run_with(ws, &cg));
    lap(&mut report, "alloc-reachability");
    report.diagnostics.extend(locks::run_with(ws, &cg));
    lap(&mut report, "lock-order");
    report.diagnostics.extend(timearith::run(ws));
    lap(&mut report, "time-arith");
    report.diagnostics.extend(determinism::run(ws));
    lap(&mut report, "determinism");
    report.diagnostics.extend(panics::run_with(ws, &cg));
    lap(&mut report, "panic-freedom");
    let (phase_diags, phase_ranked) = phase::run_with_stats(ws, &cg);
    report.diagnostics.extend(phase_diags);
    report.phase_ranked_functions = phase_ranked;
    lap(&mut report, "epoch-phase");
    let (res_diags, linear_checked, linear_crates) = resource::run_with_stats(ws, &cg);
    report.diagnostics.extend(res_diags);
    report.linear_checked_functions = linear_checked;
    report.linear_crates = linear_crates.into_iter().collect();
    lap(&mut report, "linear-resource");
    // Honour inline allow directives, then order for stable output, then
    // collapse exact duplicates (same file, line and code — e.g. two
    // resource kinds leaking at one exit): baseline counts must not
    // double-count shared anchors, and the serialised report must be
    // byte-identical across runs.
    report
        .diagnostics
        .retain(|d| !allowed(ws, &d.file, d.line, &d.code));
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, &a.code).cmp(&(&b.file, b.line, &b.code)));
    report
        .diagnostics
        .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.code == b.code);
    report
}

fn allowed(ws: &Workspace, file: &str, line: u32, code: &str) -> bool {
    ws.files
        .iter()
        .find(|f| f.path == file)
        .is_some_and(|f| f.allowed(line, code))
}
