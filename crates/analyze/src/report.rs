//! Structured diagnostics and the `LINT_report.json` emitter.
//!
//! The JSON schema is versioned (`"schema": 3`): tools downstream (CI
//! artifact consumers, the xtask gate) key off `clean`, `diagnostics[]`,
//! the per-pass counts and the annotation counters. Schema 2 added the
//! two interprocedural passes (`panic-freedom`, `epoch-phase`), the
//! `pass_counts`/`annotations`/`baselines` objects and the
//! `phase_ranked_functions` guard metric. Schema 3 adds the
//! `linear-resource` pass: its four annotation counters
//! (`tcc_linear`, `tcc_transfer_ok`, `tcc_acquires`, `tcc_releases`),
//! the `linear_checked_functions` / `linear_crates` guard metrics, and
//! `timings_ms` — per-pass wall time when the caller injects a clock
//! (`cargo xtask lint --timings`), JSON `null` otherwise so the
//! committed artifact stays byte-stable. The schema-1 flat counter keys
//! are retained so old diffs stay readable, and fields are only ever
//! *added* within a schema version.

use std::fmt::Write as _;

/// Every pass, in report order. `pass_counts` always carries all of
/// these (zeroes included) so reports from different commits diff
/// line-by-line.
pub const PASSES: [&str; 7] = [
    "alloc-reachability",
    "lock-order",
    "time-arith",
    "determinism",
    "panic-freedom",
    "epoch-phase",
    "linear-resource",
];

/// One finding of one pass, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which pass produced this (one of [`PASSES`]).
    pub pass: &'static str,
    /// Stable machine code (`alloc.transitive`, `det.wallclock`,
    /// `panic.reachable`, `phase.shard-escape`, ...).
    pub code: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the anchor token.
    pub line: u32,
    /// Function the finding is inside (display name), if any.
    pub function: String,
    pub message: String,
    /// Supporting detail: call paths, cycle edges, related sites.
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: [{}] {} (in `{}`)",
            self.file, self.line, self.code, self.message, self.function
        );
        for n in &self.notes {
            s.push_str("\n    note: ");
            s.push_str(n);
        }
        s
    }
}

/// The full analyzer result for one run over a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Count of `tcc_no_alloc` annotations seen (the xtask baseline
    /// guard fails if this ever drops below the migrated count).
    pub no_alloc_annotations: usize,
    /// Count of `tcc_alloc_ok` escape hatches seen.
    pub alloc_ok_annotations: usize,
    /// Count of `tcc_no_panic` annotations seen (baseline-guarded like
    /// `tcc_no_alloc`).
    pub no_panic_annotations: usize,
    /// Count of `tcc_panic_ok` escape hatches seen (each must cover a
    /// real panic site — `panic.stale-ok` enforces it).
    pub panic_ok_annotations: usize,
    /// In-scope functions the epoch-phase pass assigned a rank to; the
    /// xtask guard fails if this collapses (the pass went blind).
    pub phase_ranked_functions: usize,
    /// Count of `tcc_linear(..)` annotations seen (baseline-guarded:
    /// xtask fails if this drops below `RESOURCE_BASELINE`).
    pub linear_annotations: usize,
    /// Count of `tcc_transfer_ok` escape hatches seen (each must cover
    /// a real held-at-exit path — `resource.stale-ok` enforces it).
    pub transfer_ok_annotations: usize,
    /// Count of `tcc_acquires(..)` anchor annotations seen.
    pub acquire_annotations: usize,
    /// Count of `tcc_releases(..)` anchor annotations seen.
    pub release_annotations: usize,
    /// Functions the linear-resource pass actually walked (annotated,
    /// live, with a body); the xtask guard fails if this collapses.
    pub linear_checked_functions: usize,
    /// Crates containing at least one linear-checked function, sorted;
    /// the xtask guard asserts the required span (ht, fabric, msglib,
    /// core) stays covered.
    pub linear_crates: Vec<String>,
    /// Per-pass wall time in nanoseconds, in run order, when the caller
    /// injected a clock (`--timings`); empty otherwise, which serialises
    /// `timings_ms` as `null` so the committed report stays byte-stable.
    pub pass_nanos: Vec<(&'static str, u64)>,
    pub files_scanned: usize,
    pub functions_indexed: usize,
    /// Named baseline floors the caller enforces (xtask fills these in
    /// before serialising so the artifact records what was guarded).
    pub baselines: Vec<(&'static str, usize)>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics produced by `pass`.
    pub fn by_pass<'a>(&'a self, pass: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.pass == pass)
    }

    /// Serialize to the stable `LINT_report.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": 3,\n");
        s.push_str("  \"tool\": \"tcc-analyze\",\n");
        s.push_str("  \"passes\": [");
        for (i, p) in PASSES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{p}\"");
        }
        s.push_str("],\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"functions_indexed\": {},", self.functions_indexed);
        // Schema-1 flat keys, kept for diffability of old artifacts.
        let _ = writeln!(
            s,
            "  \"no_alloc_annotations\": {},",
            self.no_alloc_annotations
        );
        let _ = writeln!(
            s,
            "  \"alloc_ok_annotations\": {},",
            self.alloc_ok_annotations
        );
        s.push_str("  \"annotations\": {\n");
        let _ = writeln!(s, "    \"tcc_no_alloc\": {},", self.no_alloc_annotations);
        let _ = writeln!(s, "    \"tcc_alloc_ok\": {},", self.alloc_ok_annotations);
        let _ = writeln!(s, "    \"tcc_no_panic\": {},", self.no_panic_annotations);
        let _ = writeln!(s, "    \"tcc_panic_ok\": {},", self.panic_ok_annotations);
        let _ = writeln!(s, "    \"tcc_linear\": {},", self.linear_annotations);
        let _ = writeln!(
            s,
            "    \"tcc_transfer_ok\": {},",
            self.transfer_ok_annotations
        );
        let _ = writeln!(s, "    \"tcc_acquires\": {},", self.acquire_annotations);
        let _ = writeln!(s, "    \"tcc_releases\": {}", self.release_annotations);
        s.push_str("  },\n");
        s.push_str("  \"pass_counts\": {\n");
        for (i, p) in PASSES.iter().enumerate() {
            let n = self.by_pass(p).count();
            let comma = if i + 1 < PASSES.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{p}\": {n}{comma}");
        }
        s.push_str("  },\n");
        let _ = writeln!(
            s,
            "  \"phase_ranked_functions\": {},",
            self.phase_ranked_functions
        );
        let _ = writeln!(
            s,
            "  \"linear_checked_functions\": {},",
            self.linear_checked_functions
        );
        s.push_str("  \"linear_crates\": [");
        for (i, c) in self.linear_crates.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", esc(c));
        }
        s.push_str("],\n");
        if self.pass_nanos.is_empty() {
            s.push_str("  \"timings_ms\": null,\n");
        } else {
            s.push_str("  \"timings_ms\": {");
            for (i, (name, ns)) in self.pass_nanos.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\n    \"{name}\": {:.3}", *ns as f64 / 1.0e6);
            }
            s.push_str("\n  },\n");
        }
        s.push_str("  \"baselines\": {");
        for (i, (name, floor)) in self.baselines.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{name}\": {floor}");
        }
        if !self.baselines.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"clean\": {},", self.clean());
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            let _ = write!(s, "\"pass\": \"{}\", ", esc(d.pass));
            let _ = write!(s, "\"code\": \"{}\", ", esc(&d.code));
            let _ = write!(s, "\"file\": \"{}\", ", esc(&d.file));
            let _ = write!(s, "\"line\": {}, ", d.line);
            let _ = write!(s, "\"function\": \"{}\", ", esc(&d.function));
            let _ = write!(s, "\"message\": \"{}\", ", esc(&d.message));
            s.push_str("\"notes\": [");
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\"", esc(n));
            }
            s.push_str("]}");
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_schema_stable() {
        let mut r = Report {
            no_alloc_annotations: 21,
            no_panic_annotations: 7,
            linear_annotations: 12,
            linear_checked_functions: 12,
            linear_crates: vec!["ht".into(), "msglib".into()],
            baselines: vec![("no_alloc", 21), ("no_panic", 7), ("linear_checked", 12)],
            ..Report::default()
        };
        r.diagnostics.push(Diagnostic {
            pass: "time-arith",
            code: "time.raw-add".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            function: "f".into(),
            message: "raw `+` on \"picosecond\" value".into(),
            notes: vec!["use saturating_add".into()],
        });
        let j = r.to_json();
        assert!(j.contains("\"schema\": 3"));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"no_alloc_annotations\": 21"));
        assert!(j.contains("\"tcc_no_panic\": 7"));
        assert!(j.contains("\"tcc_linear\": 12"));
        assert!(j.contains("\"tcc_transfer_ok\": 0"));
        assert!(j.contains("\"time-arith\": 1"));
        assert!(j.contains("\"panic-freedom\": 0"));
        assert!(j.contains("\"linear-resource\": 0"));
        assert!(j.contains("\"no_panic\": 7"));
        assert!(j.contains("\"linear_checked\": 12"));
        assert!(j.contains("\"linear_crates\": [\"ht\", \"msglib\"]"));
        // No clock injected: timings stay null so the artifact is
        // byte-stable across runs.
        assert!(j.contains("\"timings_ms\": null"));
        assert!(j.contains("raw `+` on \\\"picosecond\\\" value"));
        // Keys the gate depends on must never disappear.
        for key in [
            "\"pass\"",
            "\"code\"",
            "\"file\"",
            "\"line\"",
            "\"function\"",
            "\"message\"",
            "\"notes\"",
            "\"pass_counts\"",
            "\"annotations\"",
            "\"baselines\"",
            "\"phase_ranked_functions\"",
            "\"linear_checked_functions\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
    }

    #[test]
    fn timings_serialise_in_milliseconds_when_a_clock_ran() {
        let r = Report {
            pass_nanos: vec![("callgraph", 1_500_000), ("linear-resource", 250_000)],
            ..Report::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"callgraph\": 1.500"));
        assert!(j.contains("\"linear-resource\": 0.250"));
        assert!(!j.contains("\"timings_ms\": null"));
    }

    #[test]
    fn every_pass_is_counted_even_at_zero() {
        let j = Report::default().to_json();
        for p in PASSES {
            assert!(j.contains(&format!("\"{p}\": 0")), "missing zero for {p}");
        }
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.to_json().contains("\"diagnostics\": []"));
    }
}
