//! Structured diagnostics and the `LINT_report.json` emitter.
//!
//! The JSON schema is stable (`"schema": 1`): tools downstream (CI
//! artifact consumers, the xtask gate) key off `clean`, `diagnostics[]`
//! and the annotation counters, so fields are only ever *added*.

use std::fmt::Write as _;

/// One finding of one pass, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which pass produced this (`alloc-reachability`, `lock-order`,
    /// `time-arith`, `determinism`).
    pub pass: &'static str,
    /// Stable machine code (`alloc.transitive`, `det.wallclock`, ...).
    pub code: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the anchor token.
    pub line: u32,
    /// Function the finding is inside (display name), if any.
    pub function: String,
    pub message: String,
    /// Supporting detail: call paths, cycle edges, related sites.
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: [{}] {} (in `{}`)",
            self.file, self.line, self.code, self.message, self.function
        );
        for n in &self.notes {
            s.push_str("\n    note: ");
            s.push_str(n);
        }
        s
    }
}

/// The full analyzer result for one run over a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Count of `tcc_no_alloc` annotations seen (the xtask baseline
    /// guard fails if this ever drops below the migrated count).
    pub no_alloc_annotations: usize,
    /// Count of `tcc_alloc_ok` escape hatches seen.
    pub alloc_ok_annotations: usize,
    pub files_scanned: usize,
    pub functions_indexed: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics produced by `pass`.
    pub fn by_pass<'a>(&'a self, pass: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics.iter().filter(move |d| d.pass == pass)
    }

    /// Serialize to the stable `LINT_report.json` schema.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str("  \"tool\": \"tcc-analyze\",\n");
        s.push_str(
            "  \"passes\": [\"alloc-reachability\", \"lock-order\", \"time-arith\", \"determinism\"],\n",
        );
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"functions_indexed\": {},", self.functions_indexed);
        let _ = writeln!(
            s,
            "  \"no_alloc_annotations\": {},",
            self.no_alloc_annotations
        );
        let _ = writeln!(
            s,
            "  \"alloc_ok_annotations\": {},",
            self.alloc_ok_annotations
        );
        let _ = writeln!(s, "  \"clean\": {},", self.clean());
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            let _ = write!(s, "\"pass\": \"{}\", ", esc(d.pass));
            let _ = write!(s, "\"code\": \"{}\", ", esc(&d.code));
            let _ = write!(s, "\"file\": \"{}\", ", esc(&d.file));
            let _ = write!(s, "\"line\": {}, ", d.line);
            let _ = write!(s, "\"function\": \"{}\", ", esc(&d.function));
            let _ = write!(s, "\"message\": \"{}\", ", esc(&d.message));
            s.push_str("\"notes\": [");
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\"", esc(n));
            }
            s.push_str("]}");
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_schema_stable() {
        let mut r = Report {
            no_alloc_annotations: 21,
            ..Report::default()
        };
        r.diagnostics.push(Diagnostic {
            pass: "time-arith",
            code: "time.raw-add".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            function: "f".into(),
            message: "raw `+` on \"picosecond\" value".into(),
            notes: vec!["use saturating_add".into()],
        });
        let j = r.to_json();
        assert!(j.contains("\"schema\": 1"));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"no_alloc_annotations\": 21"));
        assert!(j.contains("raw `+` on \\\"picosecond\\\" value"));
        // Keys the gate depends on must never disappear.
        for key in [
            "\"pass\"",
            "\"code\"",
            "\"file\"",
            "\"line\"",
            "\"function\"",
            "\"message\"",
            "\"notes\"",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.to_json().contains("\"diagnostics\": []"));
    }
}
