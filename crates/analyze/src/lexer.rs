//! A self-contained Rust lexer: good enough to tokenize every crate in
//! this workspace, with line numbers on every token so the passes can
//! emit `file:line` diagnostics.
//!
//! Comments are dropped (after harvesting `tcc-analyze: allow(..)`
//! directives upstream, see [`crate::parse`]), string/char literals are
//! kept as single opaque tokens, and the common multi-character operators
//! are fused so the passes can match on `::`, `->`, `+=` etc. directly.

/// What a token is, at the granularity the passes care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `store`, `SimTime`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`). Kept distinct so `'a` never looks
    /// like the start of a char literal.
    Lifetime,
    /// Any literal: number, string, char, byte string.
    Lit,
    /// Punctuation, possibly fused (`::`, `->`, `+=`, `{`, ...).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch works.
const FUSED: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "..",
];

/// Tokenize `src`. Unterminated constructs consume to end of input
/// rather than erroring: the analyzer must never abort on a source file
/// the real compiler accepts, and trailing garbage only costs precision.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::from_utf8_lossy(&b[i..end]).into_owned(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (end, nl) = scan_raw_or_byte(b, i);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::from_utf8_lossy(&b[i..end]).into_owned(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. `'\x'`-style and `'a'` are
                // chars; `'a` followed by anything but `'` is a lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    let end = scan_char(b, i);
                    toks.push(tok_lit(b, i, end, line));
                    i = end;
                } else if is_ident_start(b.get(i + 1).copied()) {
                    // Find the extent of the would-be lifetime name.
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if b.get(j) == Some(&b'\'') && j == i + 2 {
                        // exactly one ident char then a quote: 'a'
                        toks.push(tok_lit(b, i, j + 1, line));
                        i = j + 1;
                    } else {
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Degenerate ('(' etc.): char literal.
                    let end = scan_char(b, i);
                    toks.push(tok_lit(b, i, end, line));
                    i = end;
                }
            }
            c if c.is_ascii_digit() => {
                let end = scan_number(b, i);
                toks.push(tok_lit(b, i, end, line));
                i = end;
            }
            c if is_ident_start(Some(c)) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                    line,
                });
                i = j;
            }
            _ => {
                let rest = &src[i..];
                let fused = FUSED.iter().find(|op| rest.starts_with(**op));
                let text = match fused {
                    Some(op) => (*op).to_string(),
                    None => (c as char).to_string(),
                };
                let len = text.len();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
                i += len;
            }
        }
    }
    toks
}

fn tok_lit(b: &[u8], start: usize, end: usize, line: u32) -> Tok {
    Tok {
        kind: TokKind::Lit,
        text: String::from_utf8_lossy(&b[start..end]).into_owned(),
        line,
    }
}

fn is_ident_start(c: Option<u8>) -> bool {
    matches!(c, Some(c) if c == b'_' || c.is_ascii_alphabetic())
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// `"..."` with escapes; returns (end index past the quote, newlines seen).
fn scan_string(b: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), nl)
}

/// `'x'` or `'\n'`; returns end index past the closing quote.
fn scan_char(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Does `r`/`b` at `i` start a raw or byte string (r", r#", b", br", rb...)?
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    // up to two prefix letters (r, b, br, rb)
    for _ in 0..2 {
        match b.get(j) {
            Some(b'r') | Some(b'b') => j += 1,
            _ => break,
        }
    }
    if j == i {
        return false;
    }
    match b.get(j) {
        Some(b'"') => true,
        Some(b'#') => {
            // raw string hashes: r#"..."# or r##"..."##
            let mut k = j;
            while b.get(k) == Some(&b'#') {
                k += 1;
            }
            b.get(k) == Some(&b'"')
        }
        _ => false,
    }
}

/// Scan a raw/byte string starting at `i`; returns (end, newlines).
fn scan_raw_or_byte(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    let mut raw = false;
    for _ in 0..2 {
        match b.get(j) {
            Some(b'r') => {
                raw = true;
                j += 1;
            }
            Some(b'b') => j += 1,
            _ => break,
        }
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    j += 1;
    let mut nl = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            nl += 1;
            j += 1;
        } else if !raw && b[j] == b'\\' {
            j += 2;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while h < hashes && b.get(k) == Some(&b'#') {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return (k, nl);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (b.len(), nl)
}

/// Numbers: ints, floats, hex/oct/bin, suffixes, underscores. `1..2`
/// must not swallow the range operator; `1.max(2)` must not swallow the
/// method call.
fn scan_number(b: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    // A single decimal point counts only if followed by a digit (float),
    // never `..` (range) or `.ident` (method/field).
    if i < b.len()
        && b[i] == b'.'
        && b.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        && b.get(i + 1) != Some(&b'.')
    {
        i += 1;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    // Exponent sign: 1e-12
    if i < b.len() && (b[i] == b'+' || b[i] == b'-') && matches!(b[i - 1], b'e' | b'E') {
        i += 1;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        assert_eq!(
            texts("fn foo(x: u64) -> u64 { x += 1; x }"),
            [
                "fn", "foo", "(", "x", ":", "u64", ")", "->", "u64", "{", "x", "+=", "1", ";", "x",
                "}"
            ]
        );
    }

    #[test]
    fn paths_and_turbofish() {
        assert_eq!(
            texts("Vec::<u8>::with_capacity(4)"),
            [
                "Vec",
                "::",
                "<",
                "u8",
                ">",
                "::",
                "with_capacity",
                "(",
                "4",
                ")"
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = t
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let lits: Vec<_> = t
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, ["'x'", "'\\n'"]);
    }

    #[test]
    fn comments_are_dropped_and_lines_counted() {
        let t = lex("a // Vec::new(\n/* block\nspanning */ b");
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].text.as_str(), t[0].line), ("a", 1));
        assert_eq!((t[1].text.as_str(), t[1].line), ("b", 3));
    }

    #[test]
    fn strings_including_raw() {
        let t = lex(r##"let s = r#"raw "quoted" body"#; let p = "pl\"ain";"##);
        let lits: Vec<_> = t.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lits.len(), 2);
        assert!(lits[0].text.starts_with("r#\""));
        assert!(lits[1].text.starts_with('"'));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        assert_eq!(texts("0..1"), ["0", "..", "1"]);
        assert_eq!(texts("1.5e-3"), ["1.5e-3"]);
        assert_eq!(texts("1.max(2)"), ["1", ".", "max", "(", "2", ")"]);
        assert_eq!(texts("x.0.saturating_add(y.0)")[0..3], ["x", ".", "0"]);
    }

    #[test]
    fn fused_operators() {
        assert_eq!(texts("a <<= b >> c"), ["a", "<<=", "b", ">>", "c"]);
        assert_eq!(texts("a::b->c=>d"), ["a", "::", "b", "->", "c", "=>", "d"]);
    }
}
