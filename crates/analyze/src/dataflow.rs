//! Generic forward dataflow over [`crate::cfg`] graphs.
//!
//! This is the intraprocedural counterpart of the shared machinery in
//! [`crate::callgraph`]: one worklist solver every flow-sensitive pass
//! instantiates instead of re-implementing. A pass supplies an
//! [`Analysis`] — the entry fact, a per-block transfer function and a
//! lattice join — and gets back the fact at the *entry* of every block
//! (`None` for blocks no path reaches, e.g. code after a `return`).
//!
//! Two properties the callers rely on:
//!
//! * **Termination.** Facts only ever grow: a block is re-queued only
//!   when joining a predecessor's out-fact changed its entry fact, so as
//!   long as the fact lattice has finite height (the resource pass
//!   saturates its counters for exactly this reason) the loop stops.
//! * **Widening at loop heads.** Edges the CFG marks
//!   [`EdgeKind::Back`](crate::cfg::EdgeKind::Back) join through
//!   [`Analysis::widen`] instead of [`Analysis::join`], so an analysis
//!   can accelerate convergence across iterations (the default widen *is*
//!   join, which is already finite for saturating lattices).
//!
//! The solver is deterministic: the worklist is seeded with the entry
//! block and drained FIFO, successors pushed in edge order, so two runs
//! over the same CFG produce identical fact tables — a requirement the
//! byte-stable `LINT_report.json` test enforces end to end.

use crate::cfg::{Cfg, EdgeKind};
use std::collections::VecDeque;

/// A forward dataflow problem over one CFG.
pub trait Analysis {
    type Fact: Clone + PartialEq;

    /// The fact holding at function entry.
    fn entry(&self) -> Self::Fact;

    /// Push `fact` through `block` (in-place), visiting the block's
    /// events in segment order.
    fn transfer(&self, block: usize, fact: &mut Self::Fact);

    /// Join `from` into `into` at a merge point; return whether `into`
    /// changed. Must be monotone (only ever grow `into`).
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Join applied across loop back-edges. Defaults to [`join`]; an
    /// analysis over an unbounded lattice overrides this to jump to a
    /// fixed point instead of crawling one iteration at a time.
    ///
    /// [`join`]: Analysis::join
    fn widen(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        self.join(into, from)
    }
}

/// Solve `analysis` over `cfg`; returns the entry fact per block
/// (`None` = unreachable).
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Vec<Option<A::Fact>> {
    let n = cfg.blocks.len();
    let mut facts: Vec<Option<A::Fact>> = vec![None; n];
    facts[cfg.entry] = Some(analysis.entry());
    let mut queued = vec![false; n];
    queued[cfg.entry] = true;
    let mut work = VecDeque::from([cfg.entry]);
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let mut out = facts[b].clone().expect("queued blocks have facts");
        analysis.transfer(b, &mut out);
        for e in &cfg.blocks[b].succs {
            let changed = match &mut facts[e.to] {
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
                Some(f) if e.kind == EdgeKind::Back => analysis.widen(f, &out),
                Some(f) => analysis.join(f, &out),
            };
            if changed && !queued[e.to] {
                queued[e.to] = true;
                work.push_back(e.to);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use crate::parse::{parse_file, SourceFile};

    /// Toy analysis: count `tick()` calls, saturating at 9, interval
    /// `[lo, hi]` joined by widening the bounds.
    struct TickCount<'a> {
        cfg: &'a Cfg,
        file: &'a SourceFile,
    }

    impl Analysis for TickCount<'_> {
        type Fact = (u8, u8);

        fn entry(&self) -> (u8, u8) {
            (0, 0)
        }

        fn transfer(&self, block: usize, fact: &mut (u8, u8)) {
            for &(a, b) in &self.cfg.blocks[block].segs {
                for t in &self.file.toks[a..b] {
                    if t.is_ident("tick") {
                        fact.0 = (fact.0 + 1).min(9);
                        fact.1 = (fact.1 + 1).min(9);
                    }
                }
            }
        }

        fn join(&self, into: &mut (u8, u8), from: &(u8, u8)) -> bool {
            let next = (into.0.min(from.0), into.1.max(from.1));
            let changed = next != *into;
            *into = next;
            changed
        }
    }

    fn run(src: &str) -> (Cfg, Vec<Option<(u8, u8)>>) {
        let f = SourceFile::new("t.rs".into(), "fixture".into(), src);
        let p = parse_file(0, &f);
        let c = cfg::build(&f.toks, p.fns[0].body.unwrap());
        let facts = solve(&c, &TickCount { cfg: &c, file: &f });
        (c, facts)
    }

    #[test]
    fn branches_join_to_an_interval() {
        let (c, facts) = run("fn f(x: bool) { if x { tick(); tick(); } else { tick(); } done(); }");
        // At exit: one tick on the else path, two on the then path.
        assert_eq!(facts[c.exit], Some((1, 2)));
    }

    #[test]
    fn loops_widen_to_saturation_and_terminate() {
        let (c, facts) = run("fn f(n: u32) { for _ in 0..n { tick(); } }");
        // Zero iterations possible (lo stays 0); the upper bound
        // saturates instead of diverging.
        let at_exit = facts[c.exit].expect("exit reachable");
        assert_eq!(at_exit.0, 0);
        assert_eq!(at_exit.1, 9);
    }

    #[test]
    fn unreachable_blocks_have_no_facts() {
        let (c, facts) = run("fn f() { return; tick(); }");
        // Some block holds the dead `tick()` and never got a fact.
        let dead: Vec<usize> = (0..c.blocks.len())
            .filter(|&b| facts[b].is_none() && !c.blocks[b].segs.is_empty())
            .collect();
        assert!(!dead.is_empty(), "code after return is unreachable");
        // The exit still sees the return path's fact.
        assert_eq!(facts[c.exit], Some((0, 0)));
    }
}
