//! Pass 1 — alloc-reachability.
//!
//! Functions annotated `#[cfg_attr(lint, tcc_no_alloc)]` must not reach
//! an allocating call **transitively** through the intra-workspace call
//! graph. This closes the hole the old substring scan could not see: a
//! hot function whose own body is clean but which calls a local helper
//! that allocates.
//!
//! Allocation is recognised at the token level (the same constructs the
//! old scan matched, resolved properly instead of by substring):
//! `vec!`/`format!`, `Vec::new`, `*::with_capacity`, `Box::new`,
//! `String::new/from`, `Rc/Arc::new`, `.collect()`, `.to_vec()`,
//! `.to_string()`, `.to_owned()`.
//!
//! Call edges are resolved by name against every non-test workspace
//! function — a deliberate over-approximation (may-analysis): when
//! `x.push(..)` could be any of three workspace `push` methods, all
//! three are successors. `Type::name` paths resolve against impls of
//! `Type` only, so the common constructors stay precise.
//!
//! `#[cfg_attr(lint, tcc_alloc_ok)]` marks a function as a *reviewed*
//! allocation boundary (amortized growth, cold resize): traversal stops
//! there and its body is not classified. Every use is counted in the
//! report so un-reviewed escapes cannot creep in silently.

use crate::parse::{call_sites, CallKind, CallSite};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::{HashMap, VecDeque};

/// Method names that allocate regardless of receiver.
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "with_capacity",
];

/// `Qual::name` pairs that allocate. `*` quals below are handled
/// separately: any `with_capacity` allocates.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("BinaryHeap", "new"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
];

const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Why a function counts as directly allocating: the offending token
/// and its line.
struct AllocSite {
    what: String,
    line: u32,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    // Index live (non-test, non-exempt-crate) functions by name.
    let live: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| {
            let f = &ws.fns[i];
            f.body.is_some() && !ws.exempt(f)
        })
        .collect();
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_qual_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for &i in &live {
        let f = &ws.fns[i];
        by_name.entry(f.name.as_str()).or_default().push(i);
        if let Some(q) = &f.qual {
            by_qual_name
                .entry((q.as_str(), f.name.as_str()))
                .or_default()
                .push(i);
        }
    }

    // Per-function: direct allocation classification + call edges.
    let mut direct: HashMap<usize, AllocSite> = HashMap::new();
    let mut edges: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    for &i in &live {
        let f = &ws.fns[i];
        if f.has_marker("tcc_alloc_ok") {
            continue; // reviewed boundary: not classified, not traversed
        }
        let toks = &ws.file(f).toks;
        let body = f.body.expect("live fns have bodies");
        let calls = call_sites(toks, body);
        for c in &calls {
            if let Some(what) = classify_alloc(c) {
                // Keep the earliest allocation site for the message.
                direct.entry(i).or_insert(AllocSite { what, line: c.line });
                continue;
            }
            let crate_name = &ws.file(f).crate_name;
            for succ in resolve(
                ws,
                crate_name,
                f.qual.as_deref(),
                c,
                &by_name,
                &by_qual_name,
            ) {
                if succ != i {
                    edges.entry(i).or_default().push((succ, c.line));
                }
            }
        }
    }

    // BFS from every annotated root; report the first path to an
    // allocating function (parent pointers give the chain).
    let mut out = Vec::new();
    for &root in &live {
        let f = &ws.fns[root];
        if !f.has_marker("tcc_no_alloc") {
            continue;
        }
        let mut parent: HashMap<usize, (usize, u32)> = HashMap::new();
        let mut seen: Vec<usize> = vec![root];
        let mut q: VecDeque<usize> = VecDeque::from([root]);
        let mut hit: Option<usize> = None;
        while let Some(n) = q.pop_front() {
            if direct.contains_key(&n) {
                hit = Some(n);
                break;
            }
            for &(succ, line) in edges.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                if !seen.contains(&succ) {
                    seen.push(succ);
                    parent.insert(succ, (n, line));
                    q.push_back(succ);
                }
            }
        }
        if let Some(bad) = hit {
            let site = &direct[&bad];
            // Reconstruct root -> ... -> bad.
            let mut chain = vec![bad];
            let mut cur = bad;
            while let Some(&(p, _)) = parent.get(&cur) {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            let path: Vec<String> = chain.iter().map(|&i| ws.fns[i].display_name()).collect();
            let bad_fn = &ws.fns[bad];
            let code = if bad == root {
                "alloc.direct"
            } else {
                "alloc.transitive"
            };
            let mut notes = vec![format!(
                "{} in `{}` at {}:{}",
                site.what,
                bad_fn.display_name(),
                ws.file(bad_fn).path,
                site.line
            )];
            if bad != root {
                notes.push(format!("call path: {}", path.join(" -> ")));
                notes.push(
                    "a reviewed cold-path allocation can be exempted with \
                     #[cfg_attr(lint, tcc_alloc_ok)] — see docs/static-analysis.md"
                        .to_string(),
                );
            }
            out.push(Diagnostic {
                pass: "alloc-reachability",
                code: code.to_string(),
                file: ws.file(f).path.clone(),
                line: f.line,
                function: f.display_name(),
                message: if bad == root {
                    format!("hot function allocates ({})", site.what)
                } else {
                    format!(
                        "hot function reaches an allocation through `{}`",
                        bad_fn.display_name()
                    )
                },
                notes,
            });
        }
    }
    out
}

/// Is this call site itself an allocation?
fn classify_alloc(c: &CallSite) -> Option<String> {
    match c.kind {
        CallKind::Macro if ALLOC_MACROS.contains(&c.name.as_str()) => {
            Some(format!("`{}!` macro", c.name))
        }
        CallKind::Method if ALLOC_METHODS.contains(&c.name.as_str()) => {
            Some(format!("`.{}()`", c.name))
        }
        CallKind::Path => {
            if c.name == "with_capacity" {
                return Some("`with_capacity`".to_string());
            }
            let q = c.qual.as_deref()?;
            ALLOC_PATHS
                .iter()
                .find(|(pq, pn)| *pq == q && *pn == c.name)
                .map(|(pq, pn)| format!("`{pq}::{pn}`"))
        }
        _ => None,
    }
}

/// Resolve a call site to candidate workspace functions (may-analysis:
/// over-approximate on ambiguity, empty for externals). Candidates in
/// crates the caller's crate cannot import are discarded — a name match
/// across an absent dependency edge is a collision, not a call. Shared
/// with the lock-order pass, which walks the same call graph.
pub(crate) fn resolve(
    ws: &Workspace,
    caller_crate: &str,
    caller_qual: Option<&str>,
    c: &CallSite,
    by_name: &HashMap<&str, Vec<usize>>,
    by_qual_name: &HashMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    let importable = |i: &usize| ws.visible(caller_crate, &ws.files[ws.fns[*i].file].crate_name);
    match c.kind {
        CallKind::Macro => Vec::new(),
        CallKind::Method => by_name
            .get(c.name.as_str())
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|i| ws.fns[*i].qual.is_some() && importable(i))
                    .collect()
            })
            .unwrap_or_default(),
        CallKind::Path => match c.qual.as_deref() {
            Some("Self") => caller_qual
                .and_then(|q| by_qual_name.get(&(q, c.name.as_str())))
                .map(|v| v.iter().copied().filter(|i| importable(i)).collect())
                .unwrap_or_default(),
            Some(q) => {
                if let Some(v) = by_qual_name.get(&(q, c.name.as_str())) {
                    v.iter().copied().filter(|i| importable(i)).collect()
                } else if q.starts_with(char::is_lowercase) {
                    // Module path (`channel::serialization_ps`): free fns.
                    by_name
                        .get(c.name.as_str())
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|i| ws.fns[*i].qual.is_none() && importable(i))
                                .collect()
                        })
                        .unwrap_or_default()
                } else {
                    Vec::new() // external type (Vec, Bytes, ...)
                }
            }
            None => by_name
                .get(c.name.as_str())
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|i| ws.fns[*i].qual.is_none() && importable(i))
                        .collect()
                })
                .unwrap_or_default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn direct_allocation_is_flagged() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { let v = Vec::with_capacity(4); drop(v); }
            ",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "alloc.direct");
    }

    #[test]
    fn transitive_allocation_through_helper() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { stage(); }
            fn stage() { deeper(); }
            fn deeper() { let s = format!(\"x{}\", 1); drop(s); }
            ",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "alloc.transitive");
        assert!(d[0]
            .notes
            .iter()
            .any(|n| n.contains("hot -> stage -> deeper")));
    }

    #[test]
    fn alloc_ok_stops_traversal() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { grow(); }
            #[cfg_attr(lint, tcc_alloc_ok)]
            fn grow() { let v = vec![0u8; 64]; drop(v); }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn method_resolution_reaches_impl_fns() {
        let d = diags(
            "
            struct S;
            impl S {
                #[cfg_attr(lint, tcc_no_alloc)]
                fn hot(&self) { self.helper(); }
                fn helper(&self) { let x: Vec<u32> = (0..4).collect(); drop(x); }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "alloc.transitive");
    }

    #[test]
    fn clean_hot_function_passes() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot(buf: &mut [u8]) { for b in buf.iter_mut() { *b = 0; } step(); }
            fn step() {}
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_not_traversed() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { helper(); }
            fn helper() {}
            #[cfg(test)]
            mod tests {
                fn helper() { let v = vec![1]; drop(v); }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
