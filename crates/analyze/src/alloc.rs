//! Pass 1 — alloc-reachability.
//!
//! Functions annotated `#[cfg_attr(lint, tcc_no_alloc)]` must not reach
//! an allocating call **transitively** through the intra-workspace call
//! graph. This closes the hole the old substring scan could not see: a
//! hot function whose own body is clean but which calls a local helper
//! that allocates.
//!
//! Allocation is recognised at the token level (the same constructs the
//! old scan matched, resolved properly instead of by substring):
//! `vec!`/`format!`, `Vec::new`, `*::with_capacity`, `Box::new`,
//! `String::new/from`, `Rc/Arc::new`, `.collect()`, `.to_vec()`,
//! `.to_string()`, `.to_owned()`.
//!
//! Call resolution and traversal are the shared engine's
//! ([`crate::callgraph`]); this pass contributes only the allocation
//! classifier and the two boundary predicates.
//!
//! `#[cfg_attr(lint, tcc_alloc_ok)]` marks a function as a *reviewed*
//! allocation boundary (amortized growth, cold resize): traversal stops
//! there and its body is not classified. Every use is counted in the
//! report so un-reviewed escapes cannot creep in silently.

use crate::callgraph::CallGraph;
use crate::parse::{CallKind, CallSite};
use crate::report::Diagnostic;
use crate::Workspace;
use std::collections::HashMap;

/// Method names that allocate regardless of receiver.
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "with_capacity",
];

/// `Qual::name` pairs that allocate. `*` quals below are handled
/// separately: any `with_capacity` allocates.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("BinaryHeap", "new"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
];

const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Why a function counts as directly allocating: the offending token
/// and its line.
struct AllocSite {
    what: String,
    line: u32,
}

pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    run_with(ws, &CallGraph::build(ws))
}

pub fn run_with(ws: &Workspace, cg: &CallGraph) -> Vec<Diagnostic> {
    // A function participates if it is outside test/exempt code and is
    // not a reviewed boundary; boundaries are neither classified nor
    // traversed through.
    let participates = |i: usize| !ws.exempt(&ws.fns[i]) && !ws.fns[i].has_marker("tcc_alloc_ok");

    // Per-function direct allocation classification (earliest site wins).
    let mut direct: HashMap<usize, AllocSite> = HashMap::new();
    for &i in &cg.live {
        if !participates(i) {
            continue;
        }
        for c in &cg.sites[i] {
            if let Some(what) = classify_alloc(c) {
                direct.entry(i).or_insert(AllocSite { what, line: c.line });
                break;
            }
        }
    }

    // BFS from every annotated root; report the first path to an
    // allocating function.
    let mut out = Vec::new();
    for &root in &cg.live {
        let f = &ws.fns[root];
        if !f.has_marker("tcc_no_alloc") || ws.exempt(f) {
            continue;
        }
        let Some(chain) = cg.find_path(root, |n| direct.contains_key(&n), participates) else {
            continue;
        };
        let bad = *chain.last().expect("chain holds at least the root");
        let site = &direct[&bad];
        let path: Vec<String> = chain.iter().map(|&i| ws.fns[i].display_name()).collect();
        let bad_fn = &ws.fns[bad];
        let code = if bad == root {
            "alloc.direct"
        } else {
            "alloc.transitive"
        };
        let mut notes = vec![format!(
            "{} in `{}` at {}:{}",
            site.what,
            bad_fn.display_name(),
            ws.file(bad_fn).path,
            site.line
        )];
        if bad != root {
            notes.push(format!("call path: {}", path.join(" -> ")));
            notes.push(
                "a reviewed cold-path allocation can be exempted with \
                 #[cfg_attr(lint, tcc_alloc_ok)] — see docs/static-analysis.md"
                    .to_string(),
            );
        }
        out.push(Diagnostic {
            pass: "alloc-reachability",
            code: code.to_string(),
            file: ws.file(f).path.clone(),
            line: f.line,
            function: f.display_name(),
            message: if bad == root {
                format!("hot function allocates ({})", site.what)
            } else {
                format!(
                    "hot function reaches an allocation through `{}`",
                    bad_fn.display_name()
                )
            },
            notes,
        });
    }
    out
}

/// Is this call site itself an allocation?
fn classify_alloc(c: &CallSite) -> Option<String> {
    match c.kind {
        CallKind::Macro if ALLOC_MACROS.contains(&c.name.as_str()) => {
            Some(format!("`{}!` macro", c.name))
        }
        CallKind::Method if ALLOC_METHODS.contains(&c.name.as_str()) => {
            Some(format!("`.{}()`", c.name))
        }
        CallKind::Path => {
            if c.name == "with_capacity" {
                return Some("`with_capacity`".to_string());
            }
            let q = c.qual.as_deref()?;
            ALLOC_PATHS
                .iter()
                .find(|(pq, pn)| *pq == q && *pn == c.name)
                .map(|(pq, pn)| format!("`{pq}::{pn}`"))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        run(&Workspace::from_sources(&[("fix.rs", src)]))
    }

    #[test]
    fn direct_allocation_is_flagged() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { let v = Vec::with_capacity(4); drop(v); }
            ",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "alloc.direct");
    }

    #[test]
    fn transitive_allocation_through_helper() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { stage(); }
            fn stage() { deeper(); }
            fn deeper() { let s = format!(\"x{}\", 1); drop(s); }
            ",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "alloc.transitive");
        assert!(d[0]
            .notes
            .iter()
            .any(|n| n.contains("hot -> stage -> deeper")));
    }

    #[test]
    fn alloc_ok_stops_traversal() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { grow(); }
            #[cfg_attr(lint, tcc_alloc_ok)]
            fn grow() { let v = vec![0u8; 64]; drop(v); }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn method_resolution_reaches_impl_fns() {
        let d = diags(
            "
            struct S;
            impl S {
                #[cfg_attr(lint, tcc_no_alloc)]
                fn hot(&self) { self.helper(); }
                fn helper(&self) { let x: Vec<u32> = (0..4).collect(); drop(x); }
            }
            ",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, "alloc.transitive");
    }

    #[test]
    fn clean_hot_function_passes() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot(buf: &mut [u8]) { for b in buf.iter_mut() { *b = 0; } step(); }
            fn step() {}
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_not_traversed() {
        let d = diags(
            "
            #[cfg_attr(lint, tcc_no_alloc)]
            fn hot() { helper(); }
            fn helper() {}
            #[cfg(test)]
            mod tests {
                fn helper() { let v = vec![1]; drop(v); }
            }
            ",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
