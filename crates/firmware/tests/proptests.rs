//! Property-based tests for the firmware layer: address layout and MMIO
//! plans over arbitrary topologies.

use proptest::prelude::*;
use tcc_firmware::topology::{ClusterSpec, ClusterTopology, Port, SupernodeSpec, GLOBAL_BASE};

const MB: u64 = 1 << 20;

fn arb_spec() -> impl Strategy<Value = ClusterSpec> {
    prop_oneof![
        (1usize..=8)
            .prop_map(|p| ClusterSpec::new(SupernodeSpec::new(p, MB), ClusterTopology::Pair)),
        ((1usize..=4), (2usize..=12)).prop_map(|(p, n)| ClusterSpec::new(
            SupernodeSpec::new(p, MB),
            ClusterTopology::Chain(n)
        )),
        ((2usize..=8), (1usize..=8), (1usize..=6)).prop_map(|(p, x, y)| ClusterSpec::new(
            SupernodeSpec::new(p, MB),
            ClusterTopology::Mesh { x, y }
        )),
    ]
}

proptest! {
    /// Every supernode's MMIO plan plus its own DRAM slice tiles the
    /// global address space exactly once, with at most 4 MMIO registers.
    #[test]
    fn mmio_plans_tile_the_space(spec in arb_spec()) {
        let total = spec.global_end() - GLOBAL_BASE;
        for s in 0..spec.supernode_count() {
            let plan = spec.mmio_plan(s);
            prop_assert!(plan.len() <= 4, "supernode {s} uses {} registers", plan.len());
            // Disjoint.
            for (i, a) in plan.iter().enumerate() {
                for b in plan.iter().skip(i + 1) {
                    prop_assert!(a.1 <= b.0 || b.1 <= a.0, "overlap {a:?} {b:?}");
                }
                // Own slice not covered by MMIO.
                let own = (spec.supernode_base(s), spec.supernode_base(s) + spec.supernode.slice_bytes());
                prop_assert!(a.1 <= own.0 || own.1 <= a.0, "MMIO overlaps own DRAM");
            }
            let covered: u64 = plan.iter().map(|(b, l, ..)| l - b).sum();
            prop_assert_eq!(covered + spec.supernode.slice_bytes(), total);
        }
    }

    /// The MMIO plan's ports route toward the destination: following the
    /// plan from any source supernode reaches any target in exactly
    /// `hops(src, dst)` steps (X-Y routing terminates and is minimal).
    #[test]
    fn mmio_plans_route_minimally(spec in arb_spec(), src_f in 0.0f64..1.0, dst_f in 0.0f64..1.0) {
        let count = spec.supernode_count();
        let src = ((count as f64 * src_f) as usize).min(count - 1);
        let dst = ((count as f64 * dst_f) as usize).min(count - 1);
        prop_assume!(src != dst);
        let target_addr = spec.supernode_base(dst);
        let mut at = src;
        let mut steps = 0;
        while at != dst {
            steps += 1;
            prop_assert!(steps <= count, "routing loop");
            let plan = spec.mmio_plan(at);
            let (_, _, owner_p, link) = *plan
                .iter()
                .find(|(b, l, ..)| target_addr >= *b && target_addr < *l)
                .expect("target covered");
            // Identify which port (owner_p, link) is and hop through it.
            let port = Port::ALL
                .iter()
                .copied()
                .find(|p| {
                    // Ports only exist where a neighbour exists.
                    spec.neighbor(at, *p).is_some() && p.attach(&spec.supernode) == (owner_p, link)
                })
                .expect("plan names a real port");
            at = spec.neighbor(at, port).expect("port has a neighbour");
        }
        prop_assert_eq!(steps, spec.topology.hops(src, dst));
    }

    /// Cables are symmetric and unique: every cable appears once and its
    /// two endpoints name each other through opposite ports.
    #[test]
    fn cables_are_consistent(spec in arb_spec()) {
        let cables = spec.cables();
        for ((sa, pa), (sb, pb)) in &cables {
            prop_assert_eq!(spec.neighbor(*sa, *pa), Some(*sb));
            prop_assert_eq!(spec.neighbor(*sb, *pb), Some(*sa));
        }
        // No duplicates in either orientation.
        for (i, a) in cables.iter().enumerate() {
            for b in cables.iter().skip(i + 1) {
                prop_assert!(a.0 != b.0 || a.1 != b.1);
                prop_assert!(a.0 != b.1 || a.1 != b.0);
            }
        }
    }
}
