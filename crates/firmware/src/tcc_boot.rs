//! The TCCluster boot sequence (paper §V), step by step.
//!
//! ```text
//! cold reset → coherent enumeration → force non-coherent → warm reset →
//! northbridge init → CPU MSR (MTRR) init → memory init → exit CAR →
//! (skip) non-coherent enumeration → post init → load OS →
//! enable remote access
//! ```
//!
//! Each step is a method so tests can drive and inspect them individually;
//! [`boot`] runs them all and returns a [`BootReport`] whose trace proves
//! the ordering (e.g. force-ncHT strictly before warm reset).

use crate::enumerate::{enumerate_supernode, EnumerationReport};
use crate::machine::Platform;
use crate::topology::MemTypePlan;
use tcc_fabric::time::{Duration, SimTime};
use tcc_ht::init::TRAINING_TIME;
use tcc_opteron::regs::{LinkId, NodeId, LINKS_PER_NODE};

/// Outcome of a full boot.
#[derive(Debug)]
pub struct BootReport {
    /// Step names in execution order.
    pub steps: Vec<&'static str>,
    /// Per-supernode enumeration results.
    pub enumerations: Vec<EnumerationReport>,
    /// Time the (simulated) boot finished.
    pub completed_at: SimTime,
    /// Results of the remote-access self-test: one entry per
    /// (src supernode, dst supernode) pair exercised.
    pub selftest_pairs: usize,
}

/// Drives the boot sequence over a [`Platform`].
pub struct TccBoot {
    now: SimTime,
    steps: Vec<&'static str>,
}

impl Default for TccBoot {
    fn default() -> Self {
        Self::new()
    }
}

impl TccBoot {
    pub fn new() -> Self {
        TccBoot {
            now: SimTime::ZERO,
            steps: Vec::new(),
        }
    }

    fn step(&mut self, platform: &mut Platform, name: &'static str) {
        self.steps.push(name);
        platform.trace.log(self.now, "fw.boot", name);
    }

    /// Step 1 — cold reset: clear all registers, first link training.
    /// All processor-processor links (including future TCC links) come up
    /// **coherent** at 200 MHz / 8 bit.
    pub fn cold_reset(&mut self, platform: &mut Platform) {
        self.step(platform, "cold-reset");
        for n in &mut platform.nodes {
            n.regs.cold_reset();
            n.nb.node_id = NodeId::UNENUMERATED;
            n.nb.addr_map.clear();
            n.nb.routes.clear();
            n.mtrrs.clear();
        }
        for ep in platform.endpoints.values_mut() {
            ep.cold_reset();
        }
        for sb in platform.southbridges.values_mut() {
            sb.cold_reset();
        }
        self.now += TRAINING_TIME;
        platform.train_all(self.now, true);
    }

    /// Step 2 — coherent enumeration per supernode, ignoring TCC ports.
    pub fn coherent_enumeration(&mut self, platform: &mut Platform) -> Vec<EnumerationReport> {
        self.step(platform, "coherent-enumeration");
        (0..platform.spec.supernode_count())
            .map(|s| enumerate_supernode(platform, s, self.now))
            .collect()
    }

    /// Step 3 — force non-coherent: set the debug bit and the target
    /// frequency/width on both endpoints of every TCC cable; raise the
    /// internal links to full speed while at it. Nothing takes effect yet.
    pub fn force_noncoherent(&mut self, platform: &mut Platform) {
        self.step(platform, "force-non-coherent");
        let wires = platform.wires.clone();
        for w in &wires {
            for &(n, l) in [&w.a, &w.b] {
                let ep = platform
                    .endpoints
                    .get_mut(&(n, l.0))
                    .expect("wired endpoint");
                if w.internal {
                    ep.regs.freq_mhz = platform.internal_target.clock_mhz;
                    ep.regs.width_bits = platform.internal_target.width_bits;
                } else {
                    ep.regs.force_noncoherent = true;
                    ep.regs.freq_mhz = platform.tcc_target.clock_mhz;
                    ep.regs.width_bits = platform.tcc_target.width_bits;
                    platform.trace.log(
                        self.now,
                        "fw.boot",
                        format!("force-ncHT programmed on node{n} link{}", l.0),
                    );
                }
            }
        }
    }

    /// Step 4 — warm reset: retrain every link; programmed identities and
    /// speeds take effect. Verifies the TCC links actually came up
    /// non-coherent at the target speed.
    pub fn warm_reset(&mut self, platform: &mut Platform) {
        self.step(platform, "warm-reset");
        for ep in platform.endpoints.values_mut() {
            ep.warm_reset();
        }
        for sb in platform.southbridges.values_mut() {
            sb.warm_reset();
        }
        self.now += TRAINING_TIME;
        platform.train_all(self.now, false);
        let wires = platform.wires.clone();
        for w in &wires {
            let coherent = platform.link_coherent(w.a.0, w.a.1).expect("trained wire");
            if w.internal {
                assert!(coherent, "internal link lost coherence");
            } else {
                assert!(!coherent, "TCC link still coherent after warm reset");
                let cfg = platform.endpoints[&(w.a.0, w.a.1 .0)]
                    .active()
                    .unwrap()
                    .config;
                assert_eq!(cfg.clock_mhz, platform.tcc_target.clock_mhz);
            }
        }
    }

    /// Step 5 — northbridge init: address maps (paper Fig. 3), routing
    /// tables (already programmed during enumeration) and broadcast masks.
    pub fn northbridge_init(&mut self, platform: &mut Platform) {
        self.step(platform, "northbridge-init");
        let spec = platform.spec;
        for s in 0..spec.supernode_count() {
            let mmio_plan = spec.mmio_plan(s);
            for p in 0..spec.supernode.processors {
                let n = spec.proc_index(s, p);
                let node = &mut platform.nodes[n];
                node.nb.addr_map.clear();
                // DRAM: one range per processor of this supernode.
                for q in 0..spec.supernode.processors {
                    node.nb
                        .addr_map
                        .add_dram(
                            spec.node_base(s, q),
                            spec.node_base(s, q) + spec.supernode.dram_per_node,
                            NodeId(q as u8),
                        )
                        .expect("DRAM map fits");
                }
                // MMIO: the X-Y plan toward the TCC ports.
                for &(base, limit, owner_p, link) in &mmio_plan {
                    node.nb
                        .addr_map
                        .add_mmio(base, limit, NodeId(owner_p as u8), link)
                        .expect("MMIO map fits");
                }
                node.nb.addr_map.validate().expect("disjoint map");
                // Broadcasts stay on supernode-internal links.
                let mut enable = [false; LINKS_PER_NODE];
                if p > 0 {
                    enable[0] = true;
                }
                if p + 1 < spec.supernode.processors {
                    enable[1] = true;
                }
                node.nb.broadcast_enable = enable;
            }
        }
    }

    /// Step 6 — CPU MSR init: MTRRs. Remote (MMIO) space becomes
    /// write-combining on the send side; the locally exported DRAM slice
    /// becomes uncacheable so polling observes incoming posted writes.
    pub fn cpu_msr_init(&mut self, platform: &mut Platform) {
        self.step(platform, "cpu-msr-init");
        let spec = platform.spec;
        for s in 0..spec.supernode_count() {
            let mmio_plan = spec.mmio_plan(s);
            for p in 0..spec.supernode.processors {
                let n = spec.proc_index(s, p);
                let node = &mut platform.nodes[n];
                node.mtrrs.clear();
                for plan in MemTypePlan::for_node(&spec, s, &mmio_plan) {
                    node.mtrrs.program(plan.0, plan.1, plan.2);
                }
            }
        }
    }

    /// Step 7 — memory init.
    pub fn memory_init(&mut self, platform: &mut Platform) {
        self.step(platform, "memory-init");
        self.now += Duration::from_millis(1); // DIMM training, symbolic
        for node in &mut platform.nodes {
            node.regs.mem_initialized = true;
        }
    }

    /// Steps 8–11 — exit cache-as-RAM, skip non-coherent enumeration of
    /// TCC links, post init, load OS. Pure sequencing markers.
    pub fn finish_sequence(&mut self, platform: &mut Platform) {
        self.step(platform, "exit-car");
        self.step(platform, "skip-nc-enumeration");
        // Regular firmware would now probe the "I/O device" behind each
        // non-coherent link; for TCC links that would hang (the far side is
        // a processor, not a device) — the modified firmware skips them.
        let wires = platform.wires.clone();
        for w in wires.iter().filter(|w| !w.internal) {
            platform.trace.log(
                self.now,
                "fw.boot",
                format!(
                    "nc-enumeration skipped for TCC link node{} link{}",
                    w.a.0, w.a.1 .0
                ),
            );
        }
        self.step(platform, "post-init");
        self.step(platform, "load-os");
        self.now += Duration::from_millis(5);
    }

    /// Step 12 — enable remote access and run the self test: a store from
    /// every supernode's BSP into every other supernode's memory must land
    /// in the right node's DRAM (multi-hop through the mesh included).
    pub fn enable_remote_access(&mut self, platform: &mut Platform) -> usize {
        self.step(platform, "enable-remote-access");
        let spec = platform.spec;
        let count = spec.supernode_count();
        let mut pairs = 0;
        for src in 0..count {
            for dst in 0..count {
                if src == dst {
                    continue;
                }
                let src_node = spec.proc_index(src, 0);
                // Probe address: 64 B into dst's first processor's slice.
                let addr = spec.node_base(dst, 0) + 64;
                let pattern = [(0xA0 + src as u8) ^ dst as u8; 8];
                let (_, commits) = platform.store_and_propagate(src_node, self.now, addr, &pattern);
                let dst_node = spec.proc_index(dst, 0);
                let hit = commits
                    .iter()
                    .find(|c| c.node == dst_node && c.offset == 64)
                    .unwrap_or_else(|| {
                        panic!("self-test store {src}→{dst} did not land: {commits:?}")
                    });
                assert!(hit.visible > self.now);
                assert_eq!(platform.nodes[dst_node].mem.peek(64, 8), &pattern);
                pairs += 1;
            }
        }
        platform.trace.log(
            self.now,
            "fw.boot",
            format!("remote-access self-test passed for {pairs} pairs"),
        );
        pairs
    }

    /// Verify interrupts cannot escape: walk a broadcast from every node
    /// and assert it never crosses a TCC cable.
    pub fn verify_interrupt_containment(&mut self, platform: &mut Platform) {
        self.step(platform, "verify-interrupt-containment");
        let spec = platform.spec;
        for n in 0..platform.nodes.len() {
            let intr = tcc_ht::packet::Packet::control(tcc_ht::packet::Command::Broadcast {
                unit: tcc_ht::packet::UnitId::HOST,
                addr: 0xFEE0_0000,
            });
            // Inject at the node's own northbridge and follow forwards.
            let mut work = vec![(n, None::<LinkId>, intr)];
            let mut visited = 0;
            while let Some((at, via, pkt)) = work.pop() {
                visited += 1;
                assert!(visited <= spec.total_processors() * 2, "broadcast loop");
                let src = match via {
                    None => tcc_opteron::nb::Source::Core,
                    Some(l) => tcc_opteron::nb::Source::Link {
                        id: l,
                        coherent: true,
                    },
                };
                match platform.nodes[at].nb.dispose(&pkt, src).expect("broadcast") {
                    tcc_opteron::nb::Disposition::Forward { link } => {
                        assert!(
                            !platform.is_tcc_port(at, link),
                            "interrupt broadcast escaped over TCC port node{at} link{}",
                            link.0
                        );
                        let (peer, plink) =
                            platform.peer_of(at, link).expect("wired broadcast route");
                        work.push((peer, Some(plink), pkt.clone()));
                    }
                    tcc_opteron::nb::Disposition::Filtered { .. } => {}
                    other => panic!("broadcast disposed unexpectedly: {other:?}"),
                }
            }
        }
    }

    /// The complete sequence.
    pub fn run(mut self, platform: &mut Platform) -> BootReport {
        self.cold_reset(platform);
        let enumerations = self.coherent_enumeration(platform);
        self.force_noncoherent(platform);
        self.warm_reset(platform);
        self.northbridge_init(platform);
        self.cpu_msr_init(platform);
        self.memory_init(platform);
        self.finish_sequence(platform);
        let selftest_pairs = self.enable_remote_access(platform);
        self.verify_interrupt_containment(platform);
        BootReport {
            steps: self.steps,
            enumerations,
            completed_at: self.now,
            selftest_pairs,
        }
    }
}

/// Boot a platform with the full TCCluster sequence.
pub fn boot(platform: &mut Platform) -> BootReport {
    TccBoot::new().run(platform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Platform;
    use crate::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
    use tcc_opteron::UarchParams;

    const MB: u64 = 1 << 20;

    fn booted(spec: ClusterSpec) -> (Platform, BootReport) {
        let mut p = Platform::assemble(spec, UarchParams::shanghai());
        let r = boot(&mut p);
        (p, r)
    }

    #[test]
    fn pair_boots_and_passes_selftest() {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
        let (p, r) = booted(spec);
        assert_eq!(r.selftest_pairs, 2);
        assert_eq!(r.steps.first().copied(), Some("cold-reset"));
        // Ordering proof: force-ncHT before warm reset, warm reset before
        // northbridge init.
        assert!(p.trace.happened_before("force-non-coherent", "warm-reset"));
        assert!(p.trace.happened_before("warm-reset", "northbridge-init"));
        assert!(p
            .trace
            .happened_before("force-ncHT programmed", "trained non-coherent"));
    }

    #[test]
    fn two_socket_supernodes_boot() {
        let spec = ClusterSpec::new(SupernodeSpec::new(2, MB), ClusterTopology::Pair);
        let (p, r) = booted(spec);
        assert_eq!(r.selftest_pairs, 2);
        assert_eq!(r.enumerations.len(), 2);
        assert_eq!(r.enumerations[0].discovered.len(), 2);
        // Internal links stayed coherent at full speed.
        let cfg = p.endpoints[&(0, 1)].active().unwrap();
        assert!(cfg.coherent);
        assert_eq!(cfg.config.clock_mhz, 2600);
    }

    #[test]
    fn chain_of_four_multihop_selftest() {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Chain(4));
        let (_, r) = booted(spec);
        assert_eq!(r.selftest_pairs, 12, "4x3 ordered pairs, incl. 3-hop");
    }

    #[test]
    fn mesh_2x2_boots() {
        let spec = ClusterSpec::new(
            SupernodeSpec::new(2, MB),
            ClusterTopology::Mesh { x: 2, y: 2 },
        );
        let (_, r) = booted(spec);
        assert_eq!(r.selftest_pairs, 12);
    }

    #[test]
    fn mtrrs_programmed_as_paper_requires() {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
        let (p, _) = booted(spec);
        let spec = p.spec;
        // Node 0: own slice UC, remote slice WC.
        let own = spec.node_base(0, 0);
        let remote = spec.node_base(1, 0);
        assert_eq!(
            p.nodes[0].mtrrs.resolve(own + 128),
            tcc_opteron::MemType::Uncacheable
        );
        assert_eq!(
            p.nodes[0].mtrrs.resolve(remote + 128),
            tcc_opteron::MemType::WriteCombining
        );
    }

    #[test]
    fn second_boot_is_idempotent() {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
        let mut p = Platform::assemble(spec, UarchParams::shanghai());
        boot(&mut p);
        let r2 = boot(&mut p);
        assert_eq!(r2.selftest_pairs, 2);
    }
}
