//! Coherent enumeration: the BSP's depth-first walk over its coherent
//! fabric (paper §IV.E).
//!
//! After cold reset every AP's NodeID register reads 7; the BSP walks the
//! coherent links depth-first, recognises unvisited nodes by "NodeID still
//! 7", assigns fresh NodeIDs and programs routing-table entries. The
//! TCCluster firmware modification: links that the topology marks as
//! TCCluster ports are **ignored** during the walk even though they trained
//! coherent — otherwise the two supernodes would merge into one (broken)
//! coherent domain.

use crate::machine::Platform;
use tcc_fabric::time::SimTime;
use tcc_opteron::regs::{LinkId, NodeId};
use tcc_opteron::route::{NodeRoute, Route};

/// Result of enumerating one supernode.
#[derive(Debug, Clone)]
pub struct EnumerationReport {
    pub supernode: usize,
    /// Global node index → assigned NodeID, in discovery order.
    pub discovered: Vec<(usize, NodeId)>,
    /// TCC ports that trained coherent but were deliberately skipped.
    pub skipped_tcc_ports: Vec<(usize, LinkId)>,
}

/// Enumerate supernode `s` from its BSP.
pub fn enumerate_supernode(platform: &mut Platform, s: usize, now: SimTime) -> EnumerationReport {
    let spec = platform.spec;
    let procs = spec.supernode.processors;
    let bsp = spec.proc_index(s, 0);

    let mut discovered = Vec::new();
    let mut skipped = Vec::new();

    // Depth-first walk starting at the BSP. With the chain wiring the walk
    // is linear, but the algorithm is a genuine DFS over the wire list so
    // it would handle richer internal topologies.
    let mut stack = vec![bsp];
    let mut next_id = 0u8;
    while let Some(n) = stack.pop() {
        if platform.nodes[n].regs.node_id != NodeId::UNENUMERATED {
            continue; // already visited
        }
        let id = NodeId(next_id);
        next_id += 1;
        platform.nodes[n].regs.node_id = id;
        platform.nodes[n].nb.node_id = id;
        discovered.push((n, id));
        platform.trace.log(
            now,
            format!("fw.sn{s}"),
            format!("enumerated node{n} as NodeID {}", id.0),
        );
        // Examine all four links.
        for l in 0..4u8 {
            let link = LinkId(l);
            let Some((peer, _)) = platform.peer_of(n, link) else {
                continue;
            };
            match platform.link_coherent(n, link) {
                Some(true) if platform.is_tcc_port(n, link) => {
                    // The TCCluster modification: do not cross this link.
                    skipped.push((n, link));
                    platform.trace.log(
                        now,
                        format!("fw.sn{s}"),
                        format!("ignoring coherent TCC port node{n} link{l}"),
                    );
                }
                Some(true) => stack.push(peer),
                _ => {} // non-coherent (I/O) or untrained: not part of the walk
            }
        }
    }
    assert_eq!(
        discovered.len(),
        procs,
        "supernode {s}: expected {procs} nodes, found {}",
        discovered.len()
    );

    // Program chain routing tables: dest < self → link0, dest > self →
    // link1, self → accept. Broadcast masks cover internal links only.
    for p in 0..procs {
        let n = spec.proc_index(s, p);
        let routes = &mut platform.nodes[n].nb.routes;
        routes.clear();
        for q in 0..procs {
            let route = if q == p {
                Route::SelfRoute
            } else if q < p {
                Route::Link(LinkId(0))
            } else {
                Route::Link(LinkId(1))
            };
            let mut mask = 0u8;
            if p > 0 {
                mask |= 1 << 0;
            }
            if p + 1 < procs {
                mask |= 1 << 1;
            }
            routes.set(
                NodeId(q as u8),
                NodeRoute {
                    request: route,
                    response: route,
                    broadcast_links: mask,
                },
            );
        }
    }

    EnumerationReport {
        supernode: s,
        discovered,
        skipped_tcc_ports: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClusterSpec, ClusterTopology, SupernodeSpec};
    use tcc_opteron::UarchParams;

    const MB: u64 = 1 << 20;

    #[test]
    fn chain_of_four_enumerates_in_order() {
        let spec = ClusterSpec::new(SupernodeSpec::new(4, MB), ClusterTopology::Pair);
        let mut p = Platform::assemble(spec, UarchParams::shanghai());
        p.train_all(SimTime::ZERO, true);
        let rep = enumerate_supernode(&mut p, 0, SimTime::ZERO);
        assert_eq!(rep.discovered.len(), 4);
        for (i, (n, id)) in rep.discovered.iter().enumerate() {
            assert_eq!(*n, i);
            assert_eq!(id.0, i as u8);
        }
        // Second supernode untouched.
        assert_eq!(p.nodes[4].regs.node_id, NodeId::UNENUMERATED);
        // The coherent TCC port on the last processor was skipped.
        assert!(!rep.skipped_tcc_ports.is_empty());
    }

    #[test]
    fn routing_tables_form_the_chain() {
        let spec = ClusterSpec::new(SupernodeSpec::new(3, MB), ClusterTopology::Pair);
        let mut p = Platform::assemble(spec, UarchParams::shanghai());
        p.train_all(SimTime::ZERO, true);
        enumerate_supernode(&mut p, 0, SimTime::ZERO);
        let mid = &p.nodes[1].nb.routes;
        assert_eq!(mid.request_route(NodeId(0)), Some(Route::Link(LinkId(0))));
        assert_eq!(mid.request_route(NodeId(1)), Some(Route::SelfRoute));
        assert_eq!(mid.request_route(NodeId(2)), Some(Route::Link(LinkId(1))));
    }

    #[test]
    fn both_supernodes_enumerate_independently() {
        let spec = ClusterSpec::new(SupernodeSpec::new(2, MB), ClusterTopology::Pair);
        let mut p = Platform::assemble(spec, UarchParams::shanghai());
        p.train_all(SimTime::ZERO, true);
        let r0 = enumerate_supernode(&mut p, 0, SimTime::ZERO);
        let r1 = enumerate_supernode(&mut p, 1, SimTime::ZERO);
        assert_eq!(r0.discovered.len(), 2);
        assert_eq!(r1.discovered.len(), 2);
        // Each supernode restarts NodeIDs at 0 — its own coherent domain.
        assert_eq!(p.nodes[2].regs.node_id, NodeId(0));
        assert_eq!(p.nodes[3].regs.node_id, NodeId(1));
    }
}
