//! The physical machine the firmware brings up: Opteron nodes, link
//! endpoints, cables and southbridges — plus packet propagation, so a
//! booted platform can actually move data end to end (including multi-hop
//! forwarding through intermediate supernodes).

use crate::topology::{ClusterSpec, SOUTHBRIDGE};
use std::collections::BTreeMap;
use tcc_fabric::time::SimTime;
use tcc_fabric::Trace;
use tcc_ht::init::{LinkEndpoint, LinkRegs};
use tcc_ht::link::LinkConfig;
use tcc_ht::protocol_violation;
use tcc_ht::Packet;
use tcc_opteron::node::{Action, ActionSink, Node};
use tcc_opteron::regs::{LinkId, NodeId};
use tcc_opteron::UarchParams;

/// One packet crossing a wire, as seen by a [`FabricMonitor`].
#[derive(Debug)]
pub struct PacketEvent<'a> {
    /// Transmitting (node, link) port.
    pub src: (usize, LinkId),
    /// Receiving (node, link) port.
    pub dst: (usize, LinkId),
    /// Negotiated coherence of the traversed link (false on TCC cables).
    pub coherent: bool,
    pub packet: &'a Packet,
    /// Arrival time at the receiving port.
    pub arrival: SimTime,
}

/// Observer attached to the fabric via [`Platform::with_monitors`]. Called
/// for every packet the propagation loop delivers; when no monitor is
/// installed the hook is a single `Option` discriminant test, so the hot
/// path is unaffected (verified by the simspeed harness and the
/// counting-allocator regression test).
pub trait FabricMonitor: std::fmt::Debug {
    /// Invoked just before the packet is handed to the receiving node.
    fn on_packet(&mut self, ev: &PacketEvent<'_>);
}

/// A physical cable or board trace joining two node link ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    pub a: (usize, LinkId),
    pub b: (usize, LinkId),
    /// True for supernode-internal (board) links, false for TCC cables.
    pub internal: bool,
}

/// A posted write that landed in some node's DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredWrite {
    pub node: usize,
    pub offset: u64,
    pub visible: SimTime,
}

/// The assembled (un-booted) machine.
#[derive(Debug)]
pub struct Platform {
    pub spec: ClusterSpec,
    pub nodes: Vec<Node>,
    /// Link-init FSM endpoint per (global node index, link).
    pub endpoints: BTreeMap<(usize, u8), LinkEndpoint>,
    /// Southbridge-side endpoints, keyed by the hosting node.
    pub southbridges: BTreeMap<usize, LinkEndpoint>,
    pub wires: Vec<Wire>,
    pub trace: Trace,
    /// Target configuration the firmware programs into TCC links.
    pub tcc_target: LinkConfig,
    /// Target configuration for supernode-internal coherent links.
    pub internal_target: LinkConfig,
    /// Reusable propagation frontier (node, action) — drained FIFO.
    propagate_work: Vec<(usize, Action)>,
    /// Reusable per-delivery follow-up sink.
    deliver_sink: ActionSink,
    /// Lazily built per-(node, link) forwarding cache:
    /// `(peer, peer_link, coherent)` for every trained wire end. Scanning
    /// the wire list and the endpoint map per packet dominates propagation
    /// otherwise; invalidated by [`train_all`](Self::train_all).
    route_cache: Vec<[Option<(usize, LinkId, bool)>; 4]>,
    /// Optional fabric observer; `None` in every perf-sensitive run.
    monitor: Option<Box<dyn FabricMonitor>>,
}

impl Platform {
    /// Build the machine: nodes powered off, cables in place.
    pub fn assemble(spec: ClusterSpec, params: UarchParams) -> Self {
        let n_nodes = spec.total_processors();
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(Node::new(
                NodeId::UNENUMERATED,
                spec.supernode.dram_per_node as usize,
                params.clone(),
            ));
        }

        let mut wires = Vec::new();
        // Supernode-internal chains: p.l1 <-> (p+1).l0.
        for s in 0..spec.supernode_count() {
            for p in 0..spec.supernode.processors - 1 {
                wires.push(Wire {
                    a: (spec.proc_index(s, p), LinkId(1)),
                    b: (spec.proc_index(s, p + 1), LinkId(0)),
                    internal: true,
                });
            }
        }
        // TCC cables.
        for ((sa, pa), (sb, pb)) in spec.cables() {
            let (qa, la) = pa.attach(&spec.supernode);
            let (qb, lb) = pb.attach(&spec.supernode);
            wires.push(Wire {
                a: (spec.proc_index(sa, qa), la),
                b: (spec.proc_index(sb, qb), lb),
                internal: false,
            });
        }

        let mut endpoints = BTreeMap::new();
        for w in &wires {
            for &(n, l) in [&w.a, &w.b] {
                endpoints.insert((n, l.0), LinkEndpoint::new(LinkRegs::processor_default()));
            }
        }
        // Southbridges: one per supernode on the BSP.
        let mut southbridges = BTreeMap::new();
        for s in 0..spec.supernode_count() {
            let bsp = spec.proc_index(s, SOUTHBRIDGE.0);
            endpoints.insert(
                (bsp, SOUTHBRIDGE.1 .0),
                LinkEndpoint::new(LinkRegs::processor_default()),
            );
            southbridges.insert(bsp, LinkEndpoint::new(LinkRegs::io_device()));
        }

        Platform {
            spec,
            nodes,
            endpoints,
            southbridges,
            wires,
            trace: Trace::new(),
            tcc_target: LinkConfig::PROTOTYPE,
            // On-board traces are far shorter than the HTX cable: a
            // supernode-internal hop costs ~15 ns of propagation, keeping
            // the per-hop adder under the paper's 50 ns envelope.
            internal_target: LinkConfig {
                hop_latency: tcc_fabric::time::Duration::from_nanos(15),
                ..LinkConfig::HT3_FULL
            },
            propagate_work: Vec::new(),
            deliver_sink: ActionSink::new(),
            route_cache: Vec::new(),
            monitor: None,
        }
    }

    /// Install a fabric monitor. Monitors observe every delivered packet;
    /// compose several with a fan-out monitor if more than one check is
    /// wanted. Replaces any previously installed monitor.
    pub fn with_monitors(&mut self, monitor: Box<dyn FabricMonitor>) {
        self.monitor = Some(monitor);
    }

    /// Remove the installed monitor (hot path reverts to zero-cost).
    pub fn clear_monitors(&mut self) -> Option<Box<dyn FabricMonitor>> {
        self.monitor.take()
    }

    /// Whether a fabric monitor is installed. The sharded event engine
    /// checks this once per run: with no monitor it skips packet-event
    /// recording entirely, keeping the shard hot path allocation-free.
    pub fn has_monitor(&self) -> bool {
        self.monitor.is_some()
    }

    /// The wire attached to (node, link), if any.
    pub fn wire_at(&self, node: usize, link: LinkId) -> Option<&Wire> {
        self.wires
            .iter()
            .find(|w| w.a == (node, link) || w.b == (node, link))
    }

    /// The far end of (node, link).
    pub fn peer_of(&self, node: usize, link: LinkId) -> Option<(usize, LinkId)> {
        let w = self.wire_at(node, link)?;
        Some(if w.a == (node, link) { w.b } else { w.a })
    }

    /// Is the TCC cable/link at (node, link) — i.e. not a board link?
    pub fn is_tcc_port(&self, node: usize, link: LinkId) -> bool {
        self.wire_at(node, link).is_some_and(|w| !w.internal)
    }

    /// Negotiated coherence state of the link at (node, link).
    pub fn link_coherent(&self, node: usize, link: LinkId) -> Option<bool> {
        self.endpoints
            .get(&(node, link.0))
            .and_then(|e| e.active())
            .map(|a| a.coherent)
    }

    /// Rebuild the forwarding cache from the current wires and endpoint
    /// states. Untrained or unwired ports stay `None`.
    ///
    /// `tcc_alloc_ok`: runs only when the cache was invalidated by a
    /// topology change (link train/untrain) — never in the per-packet
    /// propagate loop, which hits the prebuilt cache.
    #[cfg_attr(lint, tcc_alloc_ok)]
    fn rebuild_route_cache(&mut self) {
        self.route_cache = vec![[None; 4]; self.nodes.len()];
        for w in &self.wires {
            for (here, there) in [(w.a, w.b), (w.b, w.a)] {
                let coherent = self
                    .endpoints
                    .get(&(here.0, here.1 .0))
                    .and_then(|e| e.active())
                    .map(|a| a.coherent);
                if let Some(c) = coherent {
                    self.route_cache[here.0][here.1 .0 as usize] = Some((there.0, there.1, c));
                }
            }
        }
    }

    /// The trained forwarding entry for (node, link): the receiving
    /// `(peer, peer_link, coherent)` triple, lazily (re)building the route
    /// cache exactly as [`propagate`](Self::propagate) does. External
    /// fabric engines use this to walk packets hop by hop with the same
    /// tables the chained engine uses.
    pub fn route_hop(&mut self, node: usize, link: LinkId) -> Option<(usize, LinkId, bool)> {
        if self.route_cache.is_empty() {
            self.rebuild_route_cache();
        }
        self.route_cache[node][link.0 as usize]
    }

    /// Fire the installed fabric monitor (if any) for one wire crossing.
    /// Both engines funnel every delivered packet through here, so a
    /// monitor mounted with [`with_monitors`](Self::with_monitors)
    /// observes chained and event-driven runs identically.
    pub fn monitor_packet(&mut self, ev: &PacketEvent<'_>) {
        if let Some(mon) = self.monitor.as_deref_mut() {
            mon.on_packet(ev);
        }
    }

    /// Negotiated configuration of the trained link at (node, link).
    pub fn active_config(&self, node: usize, link: LinkId) -> Option<LinkConfig> {
        self.endpoints
            .get(&(node, link.0))
            .and_then(|e| e.active())
            .map(|a| a.config)
    }

    /// Run link training on every wire (and southbridge stubs).
    /// `first_training` selects the post-cold-reset 200 MHz/8-bit pass.
    pub fn train_all(&mut self, now: SimTime, first_training: bool) {
        self.route_cache.clear();
        let wires = self.wires.clone();
        for w in wires {
            let hop = if w.internal {
                self.internal_target.hop_latency
            } else {
                self.tcc_target.hop_latency
            };
            // Two disjoint borrows out of the map.
            let mut a = self
                .endpoints
                .remove(&(w.a.0, w.a.1 .0))
                .expect("endpoint a");
            let mut b = self
                .endpoints
                .remove(&(w.b.0, w.b.1 .0))
                .expect("endpoint b");
            a.begin_training();
            b.begin_training();
            let link = tcc_ht::init::negotiate(&mut a, &mut b, hop, first_training);
            self.trace.log(
                now,
                format!("wire.n{}l{}-n{}l{}", w.a.0, w.a.1 .0, w.b.0, w.b.1 .0),
                format!(
                    "trained {} @{}MHz/{}bit",
                    if link.coherent {
                        "coherent"
                    } else {
                        "non-coherent"
                    },
                    link.config.clock_mhz,
                    link.config.width_bits
                ),
            );
            self.endpoints.insert((w.a.0, w.a.1 .0), a);
            self.endpoints.insert((w.b.0, w.b.1 .0), b);
            // Attach/reconfigure the serialising transmitters.
            let seed_a = (w.a.0 as u64) << 8 | w.a.1 .0 as u64;
            let seed_b = (w.b.0 as u64) << 8 | w.b.1 .0 as u64;
            self.nodes[w.a.0].attach_link(w.a.1, link.config, seed_a);
            self.nodes[w.b.0].attach_link(w.b.1, link.config, seed_b);
        }
        // Southbridge links (always non-coherent).
        let sbs: Vec<usize> = self.southbridges.keys().copied().collect();
        for bsp in sbs {
            let key = (bsp, SOUTHBRIDGE.1 .0);
            let mut cpu = self.endpoints.remove(&key).expect("SB cpu endpoint");
            let sb = self.southbridges.get_mut(&bsp).expect("SB endpoint");
            cpu.begin_training();
            sb.begin_training();
            let link =
                tcc_ht::init::negotiate(&mut cpu, sb, self.tcc_target.hop_latency, first_training);
            assert!(!link.coherent, "southbridge link must be non-coherent");
            self.endpoints.insert(key, cpu);
        }
    }

    /// Propagate a batch of node actions through the fabric until all
    /// packets have landed, delivering packets in FIFO (emission) order —
    /// deliveries happen in exactly the order a store-at-a-time driver
    /// loop would produce, so batching a whole message's actions into one
    /// call leaves the receive-side timing unchanged. Drains `actions`
    /// and appends every DRAM commit that resulted to `commits`; both
    /// buffers are caller-owned so the hot path reuses them without
    /// allocating.
    #[cfg_attr(lint, tcc_no_alloc, tcc_no_panic)]
    pub fn propagate(
        &mut self,
        from_node: usize,
        actions: &mut ActionSink,
        commits: &mut Vec<DeliveredWrite>,
    ) {
        if self.route_cache.is_empty() {
            self.rebuild_route_cache();
        }
        let mut work = std::mem::take(&mut self.propagate_work);
        work.clear();
        work.extend(actions.drain().map(|a| (from_node, a)));
        let mut i = 0;
        while i < work.len() {
            // Move the action out, leaving a cheap placeholder (the slot
            // is never revisited).
            let (node, action) =
                std::mem::replace(&mut work[i], (usize::MAX, Action::BroadcastFiltered));
            i += 1;
            match action {
                Action::LocalCommit { offset, visible } => commits.push(DeliveredWrite {
                    node,
                    offset,
                    visible,
                }),
                Action::BroadcastFiltered => {}
                Action::PacketOut {
                    link,
                    packet,
                    arrival,
                } => {
                    let Some((peer, peer_link, coherent)) = self.route_cache[node][link.0 as usize]
                    else {
                        protocol_violation!(
                            "packet out untrained/unwired link n{node} l{}",
                            link.0
                        );
                    };
                    self.monitor_packet(&PacketEvent {
                        src: (node, link),
                        dst: (peer, peer_link),
                        coherent,
                        packet: &packet,
                        arrival,
                    });
                    let mut followups = std::mem::take(&mut self.deliver_sink);
                    followups.clear();
                    self.nodes[peer]
                        .deliver(arrival, peer_link, packet, coherent, &mut followups)
                        .unwrap_or_else(|e| {
                            protocol_violation!("delivery failed at node {peer}: {e:?}")
                        });
                    work.extend(followups.drain().map(|a| (peer, a)));
                    self.deliver_sink = followups;
                }
            }
        }
        work.clear();
        self.propagate_work = work;
    }

    /// Issue a store on `node` and propagate its consequences. Returns
    /// (outcome retire time, commits). A convenience wrapper for boot
    /// code and tests; hot loops drive `store`/`propagate` with their own
    /// reusable buffers instead.
    pub fn store_and_propagate(
        &mut self,
        node: usize,
        now: SimTime,
        addr: u64,
        data: &[u8],
    ) -> (SimTime, Vec<DeliveredWrite>) {
        let mut sink = ActionSink::new();
        let mut commits = Vec::new();
        let out = self.nodes[node].store(now, addr, data, &mut sink);
        let retire = out.retire;
        self.propagate(node, &mut sink, &mut commits);
        // Flush any residue held in WC buffers so single stores land.
        self.nodes[node].sfence(retire, &mut sink);
        self.propagate(node, &mut sink, &mut commits);
        (retire, commits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClusterTopology, SupernodeSpec};

    const MB: u64 = 1 << 20;

    fn pair_platform() -> Platform {
        let spec = ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair);
        Platform::assemble(spec, UarchParams::shanghai())
    }

    #[test]
    fn assembly_counts() {
        let p = pair_platform();
        assert_eq!(p.nodes.len(), 2);
        assert_eq!(p.wires.len(), 1, "one TCC cable");
        assert!(!p.wires[0].internal);
        assert_eq!(p.southbridges.len(), 2, "one SB per supernode");
        // Pair: node0 East(l3) <-> node1 West(l2).
        assert_eq!(p.peer_of(0, LinkId(3)), Some((1, LinkId(2))));
        assert_eq!(p.peer_of(0, LinkId(1)), None);
    }

    #[test]
    fn first_training_is_coherent_at_boot_speed() {
        let mut p = pair_platform();
        p.train_all(SimTime::ZERO, true);
        assert_eq!(p.link_coherent(0, LinkId(3)), Some(true));
        let ep = &p.endpoints[&(0, 3)];
        let active = ep.active().unwrap();
        assert_eq!(active.config.clock_mhz, 200);
        assert_eq!(active.config.width_bits, 8);
    }

    #[test]
    fn retraining_applies_programmed_registers() {
        let mut p = pair_platform();
        p.train_all(SimTime::ZERO, true);
        for key in [(0usize, 3u8), (1, 2)] {
            let ep = p.endpoints.get_mut(&key).unwrap();
            ep.regs.force_noncoherent = true;
            ep.regs.freq_mhz = 800;
            ep.regs.width_bits = 16;
            ep.warm_reset();
        }
        p.train_all(SimTime::ZERO, false);
        assert_eq!(p.link_coherent(0, LinkId(3)), Some(false));
        let active = p.endpoints[&(0, 3)].active().unwrap();
        assert_eq!(active.config.clock_mhz, 800);
    }

    #[test]
    fn supernode_internal_wiring() {
        let spec = ClusterSpec::new(SupernodeSpec::new(4, MB), ClusterTopology::Pair);
        let p = Platform::assemble(spec, UarchParams::shanghai());
        assert_eq!(p.nodes.len(), 8);
        // 3 internal wires per supernode x2 + 1 cable.
        assert_eq!(p.wires.len(), 7);
        assert_eq!(p.peer_of(1, LinkId(1)), Some((2, LinkId(0))));
        assert!(p.is_tcc_port(3, LinkId(2)) || p.is_tcc_port(3, LinkId(3)));
    }
}
