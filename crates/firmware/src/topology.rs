//! Cluster topology descriptors and the global address-space layout.
//!
//! A *supernode* (paper §IV.E) is a chain of processors joined by coherent
//! HT links, with one southbridge on the BSP and up to four TCCluster
//! ports. Supernodes are arranged in a pair, a chain, or a 2-D mesh; the
//! global physical address space is laid out contiguously (row-major for
//! meshes) because the northbridge's interval routing cannot express
//! memory holes (paper §IV.D).
//!
//! Port convention (chain-internal links are `l0` ← previous / `l1` → next):
//!
//! * southbridge: processor 0, link 0 (free: p0 has no previous neighbour)
//! * West port:  processor 0, link 2        North port: processor 0, link 3
//! * East port:  processor P-1, link 2      South port: processor P-1, link 3
//!
//! Single-processor supernodes therefore support only West/East (pair and
//! chain topologies); meshes need at least two processors per supernode.

use tcc_opteron::regs::{LinkId, NodeId};

/// Shape of one supernode.
#[derive(Debug, Clone, Copy)]
pub struct SupernodeSpec {
    /// Processors per supernode (1..=8, chained coherently).
    pub processors: usize,
    /// DRAM attached to each processor, bytes.
    pub dram_per_node: u64,
}

impl SupernodeSpec {
    pub fn new(processors: usize, dram_per_node: u64) -> Self {
        assert!(
            (1..=NodeId::MAX_COHERENT as usize).contains(&processors),
            "supernode size {processors} exceeds the 8-node coherent limit"
        );
        assert!(dram_per_node.is_power_of_two(), "DRAM size must be 2^k");
        SupernodeSpec {
            processors,
            dram_per_node,
        }
    }

    /// Bytes of the global address space one supernode occupies.
    pub fn slice_bytes(&self) -> u64 {
        self.processors as u64 * self.dram_per_node
    }
}

/// Arrangement of supernodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterTopology {
    /// Two supernodes, one TCCluster cable — the paper's prototype.
    Pair,
    /// A 1-D chain of `n` supernodes (West–East).
    Chain(usize),
    /// An `x` × `y` mesh with X-Y (dimension-ordered) routing.
    Mesh { x: usize, y: usize },
}

impl ClusterTopology {
    pub fn supernode_count(&self) -> usize {
        match *self {
            ClusterTopology::Pair => 2,
            ClusterTopology::Chain(n) => n,
            ClusterTopology::Mesh { x, y } => x * y,
        }
    }

    /// Grid position of supernode `s` (chain = 1-row mesh).
    pub fn position(&self, s: usize) -> (usize, usize) {
        match *self {
            ClusterTopology::Pair => (0, s),
            ClusterTopology::Chain(_) => (0, s),
            ClusterTopology::Mesh { x, .. } => (s / x, s % x),
        }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        match *self {
            ClusterTopology::Pair => 2,
            ClusterTopology::Chain(n) => n,
            ClusterTopology::Mesh { x, .. } => x,
        }
    }

    /// Hop distance between two supernodes under X-Y routing.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ra, ca) = self.position(a);
        let (rb, cb) = self.position(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }
}

/// The four TCCluster ports of a supernode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    West,
    East,
    North,
    South,
}

impl Port {
    pub const ALL: [Port; 4] = [Port::West, Port::East, Port::North, Port::South];

    /// (processor index within supernode, link) implementing this port.
    ///
    /// Single-processor supernodes fold East onto link 3 (so West/East
    /// coexist for chains) and cannot offer North/South.
    pub fn attach(self, spec: &SupernodeSpec) -> (usize, LinkId) {
        let last = spec.processors - 1;
        match self {
            Port::West => (0, LinkId(2)),
            Port::East if spec.processors == 1 => (0, LinkId(3)),
            Port::East => (last, LinkId(2)),
            Port::North => {
                assert!(spec.processors >= 2, "North port needs >= 2 processors");
                (0, LinkId(3))
            }
            Port::South => {
                assert!(spec.processors >= 2, "South port needs >= 2 processors");
                (last, LinkId(3))
            }
        }
    }
}

/// Where the southbridge hangs.
pub const SOUTHBRIDGE: (usize, LinkId) = (0, LinkId(0));

/// Base of the global DRAM window (leaving low memory for legacy ranges).
pub const GLOBAL_BASE: u64 = 0x1_0000_0000; // 4 GiB

/// Full cluster description.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    pub supernode: SupernodeSpec,
    pub topology: ClusterTopology,
}

impl ClusterSpec {
    pub fn new(supernode: SupernodeSpec, topology: ClusterTopology) -> Self {
        if let ClusterTopology::Mesh { x, y } = topology {
            assert!(x >= 1 && y >= 1);
            if y > 1 {
                assert!(
                    supernode.processors >= 2,
                    "mesh topologies need >= 2 processors per supernode \
                     (four TCC ports)"
                );
            }
        }
        ClusterSpec {
            supernode,
            topology,
        }
    }

    pub fn supernode_count(&self) -> usize {
        self.topology.supernode_count()
    }

    pub fn total_processors(&self) -> usize {
        self.supernode_count() * self.supernode.processors
    }

    /// Global index of processor `p` of supernode `s`.
    pub fn proc_index(&self, s: usize, p: usize) -> usize {
        s * self.supernode.processors + p
    }

    /// Base address of supernode `s`'s DRAM slice.
    pub fn supernode_base(&self, s: usize) -> u64 {
        GLOBAL_BASE + s as u64 * self.supernode.slice_bytes()
    }

    /// Base address of the DRAM of processor `p` in supernode `s`.
    pub fn node_base(&self, s: usize, p: usize) -> u64 {
        self.supernode_base(s) + p as u64 * self.supernode.dram_per_node
    }

    /// Exclusive end of the global space.
    pub fn global_end(&self) -> u64 {
        GLOBAL_BASE + self.supernode_count() as u64 * self.supernode.slice_bytes()
    }

    /// The neighbour of supernode `s` through `port`, if it exists.
    pub fn neighbor(&self, s: usize, port: Port) -> Option<usize> {
        let (r, c) = self.topology.position(s);
        let w = self.topology.width();
        let count = self.supernode_count();
        let rows = count.div_ceil(w);
        match port {
            Port::West if c > 0 => Some(r * w + (c - 1)),
            Port::East if c + 1 < w && r * w + c + 1 < count => Some(r * w + c + 1),
            Port::North if r > 0 => Some((r - 1) * w + c),
            Port::South if r + 1 < rows && (r + 1) * w + c < count => Some((r + 1) * w + c),
            _ => None,
        }
    }

    /// All TCCluster cables as ((supernode, port), (supernode, port)),
    /// each listed once.
    pub fn cables(&self) -> Vec<((usize, Port), (usize, Port))> {
        let mut out = Vec::new();
        for s in 0..self.supernode_count() {
            if let Some(e) = self.neighbor(s, Port::East) {
                out.push(((s, Port::East), (e, Port::West)));
            }
            if let Some(d) = self.neighbor(s, Port::South) {
                out.push(((s, Port::South), (d, Port::North)));
            }
        }
        out
    }

    /// The MMIO programming for processor `p` of supernode `s`: a list of
    /// (base, limit, owner-processor-in-supernode, link) directing every
    /// non-local global address toward the right port under X-Y routing.
    pub fn mmio_plan(&self, s: usize) -> Vec<(u64, u64, usize, LinkId)> {
        let spec = &self.supernode;
        let (r, _) = self.topology.position(s);
        let w = self.topology.width();
        let slice = spec.slice_bytes();
        let row_base = GLOBAL_BASE + (r * w) as u64 * slice;
        let my_base = self.supernode_base(s);
        let my_end = my_base + slice;
        let count = self.supernode_count();
        let row_len = ((count - r * w).min(w)) as u64;
        let row_end = row_base + row_len * slice;
        let mut plan = Vec::new();
        let port = |p: Port| p.attach(spec);
        // X first: within my row.
        if my_base > row_base {
            let (p, l) = port(Port::West);
            plan.push((row_base, my_base, p, l));
        }
        if row_end > my_end {
            let (p, l) = port(Port::East);
            plan.push((my_end, row_end, p, l));
        }
        // Then Y: everything in earlier rows goes North, later rows South.
        if row_base > GLOBAL_BASE {
            let (p, l) = port(Port::North);
            plan.push((GLOBAL_BASE, row_base, p, l));
        }
        if self.global_end() > row_end {
            let (p, l) = port(Port::South);
            plan.push((row_end, self.global_end(), p, l));
        }
        plan
    }
}

/// MTRR programming plan: (base, limit, type) triples for one processor.
pub struct MemTypePlan;

impl MemTypePlan {
    /// The paper's §V "CPU MSR Init": the locally exported DRAM slice is
    /// uncacheable (polls must see incoming posted writes); every remote
    /// (MMIO) window is write-combining (stores coalesce into max-size HT
    /// packets). Peer slices inside the same supernode stay write-back
    /// (default, coherent fabric keeps them consistent).
    pub fn for_node(
        spec: &ClusterSpec,
        s: usize,
        mmio_plan: &[(u64, u64, usize, tcc_opteron::regs::LinkId)],
    ) -> Vec<(u64, u64, tcc_opteron::mtrr::MemType)> {
        use tcc_opteron::mtrr::MemType;
        let mut out = Vec::new();
        out.push((
            spec.supernode_base(s),
            spec.supernode_base(s) + spec.supernode.slice_bytes(),
            MemType::Uncacheable,
        ));
        for &(base, limit, ..) in mmio_plan {
            out.push((base, limit, MemType::WriteCombining));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn pair() -> ClusterSpec {
        ClusterSpec::new(SupernodeSpec::new(1, MB), ClusterTopology::Pair)
    }

    fn mesh22() -> ClusterSpec {
        ClusterSpec::new(
            SupernodeSpec::new(2, MB),
            ClusterTopology::Mesh { x: 2, y: 2 },
        )
    }

    #[test]
    fn pair_layout() {
        let c = pair();
        assert_eq!(c.supernode_count(), 2);
        assert_eq!(c.supernode_base(0), GLOBAL_BASE);
        assert_eq!(c.supernode_base(1), GLOBAL_BASE + MB);
        assert_eq!(c.global_end(), GLOBAL_BASE + 2 * MB);
        assert_eq!(c.cables().len(), 1);
        assert_eq!(c.neighbor(0, Port::East), Some(1));
        assert_eq!(c.neighbor(0, Port::West), None);
        assert_eq!(c.neighbor(1, Port::West), Some(0));
    }

    #[test]
    fn pair_mmio_plan_covers_everything_remote() {
        let c = pair();
        let plan0 = c.mmio_plan(0);
        assert_eq!(
            plan0,
            vec![(GLOBAL_BASE + MB, GLOBAL_BASE + 2 * MB, 0, LinkId(3))]
        );
        let plan1 = c.mmio_plan(1);
        assert_eq!(plan1, vec![(GLOBAL_BASE, GLOBAL_BASE + MB, 0, LinkId(2))]);
    }

    #[test]
    fn chain_hops() {
        let t = ClusterTopology::Chain(8);
        assert_eq!(t.hops(0, 7), 7);
        assert_eq!(t.hops(3, 3), 0);
        let c = ClusterSpec::new(SupernodeSpec::new(1, MB), t);
        assert_eq!(c.cables().len(), 7);
    }

    #[test]
    fn mesh_positions_and_cables() {
        let c = mesh22();
        assert_eq!(c.topology.position(3), (1, 1));
        assert_eq!(c.topology.hops(0, 3), 2);
        // 2x2 mesh: 2 horizontal + 2 vertical cables.
        assert_eq!(c.cables().len(), 4);
        assert_eq!(c.neighbor(0, Port::South), Some(2));
        assert_eq!(c.neighbor(3, Port::North), Some(1));
    }

    #[test]
    fn mesh_mmio_plan_xy_routing() {
        let c = mesh22();
        let slice = 2 * MB;
        // Supernode 3 is at (1,1): West interval covers supernode 2, North
        // interval covers row 0.
        let plan = c.mmio_plan(3);
        let west = (
            GLOBAL_BASE + 2 * slice,
            GLOBAL_BASE + 3 * slice,
            0,
            LinkId(2),
        );
        let north = (GLOBAL_BASE, GLOBAL_BASE + 2 * slice, 0, LinkId(3));
        assert!(plan.contains(&west), "{plan:?}");
        assert!(plan.contains(&north), "{plan:?}");
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn mmio_plan_fits_register_budget() {
        let c = ClusterSpec::new(
            SupernodeSpec::new(2, MB),
            ClusterTopology::Mesh { x: 16, y: 16 },
        );
        for s in 0..c.supernode_count() {
            let plan = c.mmio_plan(s);
            assert!(plan.len() <= 4, "supernode {s}: {} ranges", plan.len());
            // Plan plus the supernode's own DRAM covers the global space
            // exactly once.
            let mut covered: u64 = plan.iter().map(|(b, l, ..)| l - b).sum();
            covered += c.supernode.slice_bytes();
            assert_eq!(covered, c.global_end() - GLOBAL_BASE);
        }
    }

    #[test]
    fn port_attachment_convention() {
        let two = SupernodeSpec::new(2, MB);
        assert_eq!(Port::West.attach(&two), (0, LinkId(2)));
        assert_eq!(Port::North.attach(&two), (0, LinkId(3)));
        assert_eq!(Port::East.attach(&two), (1, LinkId(2)));
        assert_eq!(Port::South.attach(&two), (1, LinkId(3)));
        let one = SupernodeSpec::new(1, MB);
        assert_eq!(
            Port::East.attach(&one),
            (0, LinkId(3)),
            "1-proc East folds onto link 3"
        );
    }

    #[test]
    #[should_panic(expected = "8-node coherent limit")]
    fn oversized_supernode_rejected() {
        SupernodeSpec::new(9, MB);
    }

    #[test]
    #[should_panic(expected = ">= 2 processors")]
    fn mesh_needs_two_procs() {
        ClusterSpec::new(
            SupernodeSpec::new(1, MB),
            ClusterTopology::Mesh { x: 2, y: 2 },
        );
    }
}
