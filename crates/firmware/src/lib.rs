//! # tcc-firmware — coreboot-like platform bring-up
//!
//! The firmware layer of the TCCluster reproduction:
//!
//! * [`topology`] — supernode/cluster descriptors, the contiguous global
//!   address-space layout (paper Fig. 3) and the X-Y MMIO routing plan.
//! * [`machine`] — the physical platform: nodes, link endpoints, cables,
//!   southbridges, and packet propagation across the booted fabric.
//! * [`enumerate`] — the BSP's coherent depth-first enumeration, modified
//!   to ignore TCC ports (paper §V "Coherent Enumeration").
//! * [`tcc_boot`] — the full 12-step TCCluster boot sequence with a
//!   remote-access self-test and interrupt-containment verification.

#![forbid(unsafe_code)]

pub mod enumerate;
pub mod machine;
pub mod tcc_boot;
pub mod topology;

pub use enumerate::{enumerate_supernode, EnumerationReport};
pub use machine::{DeliveredWrite, FabricMonitor, PacketEvent, Platform, Wire};
pub use tcc_boot::{boot, BootReport, TccBoot};
pub use topology::{ClusterSpec, ClusterTopology, Port, SupernodeSpec, GLOBAL_BASE};
