//! # tcc-driver — the TCCluster operating-system layer
//!
//! The paper's software stack between firmware and the message library: a
//! custom Linux kernel (interrupt/SMC broadcasts disabled, §VI) and a
//! device driver that maps remote TCCluster windows into user space
//! page-wise (§V):
//!
//! * [`kernel`] — kernel-configuration audit: the driver refuses to run
//!   where SMC/IPI/MCE broadcasts could enter the fabric.
//! * [`vm`] — page-granular mappings with the attribute rules the trick
//!   requires (remote = write-only + write-combining, exported receive
//!   buffers = uncacheable), each violation matching a real failure mode.
//! * [`dev`] — the `/dev/tcc` model: topology query, `map_remote`,
//!   `map_local`, bounds-checked against the booted global address map.

#![forbid(unsafe_code)]

pub mod dev;
pub mod kernel;
pub mod vm;

pub use dev::{DevError, TccDevice, TopologyInfo};
pub use kernel::{audit, tccluster_ready, KernelConfig, Violation};
pub use vm::{AddressSpace, Backing, CacheAttr, MapError, Prot, PAGE};
