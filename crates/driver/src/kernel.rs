//! The custom-kernel requirement (paper §VI): "Within the HyperTransport
//! fabric interrupts are broadcasted to inform coherent and non-coherent
//! devices … It is required to avoid broadcasting of interrupts over
//! TCCluster as interrupts have to be handled within the system and must
//! not be sent over the network. Therefore, all system management calls
//! (SMC) need to be disabled which can only be achieved with a custom
//! kernel."
//!
//! This module models the kernel configuration and its audit: the driver
//! refuses to enable remote access on a kernel that would inject
//! broadcast traffic into the fabric, and a demonstration shows what a
//! spurious SMC broadcast would do to a remote node if it escaped.

/// Kernel features relevant to TCCluster.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Kernel release string.
    pub release: String,
    /// System-management calls enabled (generate fabric broadcasts).
    pub smc_enabled: bool,
    /// IPI broadcast shortcuts (logical destination "all including self").
    pub broadcast_ipis: bool,
    /// MCE broadcast on machine checks.
    pub mce_broadcast: bool,
    /// The TCCluster driver is present.
    pub tcc_driver: bool,
}

impl KernelConfig {
    /// A stock distribution kernel of the era.
    pub fn stock_2_6_34() -> Self {
        KernelConfig {
            release: "2.6.34".into(),
            smc_enabled: true,
            broadcast_ipis: true,
            mce_broadcast: true,
            tcc_driver: false,
        }
    }

    /// The paper's patched kernel: "we needed to compile our own kernel
    /// to comply with a limitation of TCCluster caused by interrupts."
    pub fn tcc_2_6_34() -> Self {
        KernelConfig {
            release: "2.6.34-tcc".into(),
            smc_enabled: false,
            broadcast_ipis: false,
            mce_broadcast: false,
            tcc_driver: true,
        }
    }
}

/// One reason a kernel cannot run TCCluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    SmcEnabled,
    BroadcastIpis,
    MceBroadcast,
    DriverMissing,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Violation::SmcEnabled => {
                "system-management calls enabled: SMC broadcasts would enter the fabric"
            }
            Violation::BroadcastIpis => {
                "broadcast IPIs enabled: wake-up interrupts would target all NodeIDs"
            }
            Violation::MceBroadcast => {
                "machine-check broadcast enabled: an MCE would fan out as a fabric broadcast"
            }
            Violation::DriverMissing => "tcc driver not built into this kernel",
        };
        f.write_str(s)
    }
}

/// Audit a kernel for TCCluster readiness.
pub fn audit(cfg: &KernelConfig) -> Vec<Violation> {
    let mut v = Vec::new();
    if cfg.smc_enabled {
        v.push(Violation::SmcEnabled);
    }
    if cfg.broadcast_ipis {
        v.push(Violation::BroadcastIpis);
    }
    if cfg.mce_broadcast {
        v.push(Violation::MceBroadcast);
    }
    if !cfg.tcc_driver {
        v.push(Violation::DriverMissing);
    }
    v
}

/// Does this kernel pass the driver's load-time check?
pub fn tccluster_ready(cfg: &KernelConfig) -> bool {
    audit(cfg).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_kernel_fails_audit() {
        let v = audit(&KernelConfig::stock_2_6_34());
        assert!(v.contains(&Violation::SmcEnabled));
        assert!(v.contains(&Violation::DriverMissing));
        assert_eq!(v.len(), 4);
        assert!(!tccluster_ready(&KernelConfig::stock_2_6_34()));
    }

    #[test]
    fn patched_kernel_passes() {
        assert!(tccluster_ready(&KernelConfig::tcc_2_6_34()));
    }

    #[test]
    fn violations_explain_themselves() {
        for v in audit(&KernelConfig::stock_2_6_34()) {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn smc_broadcast_is_contained_by_firmware_but_must_not_be_generated() {
        // Defence in depth: even with the firmware's broadcast masks a
        // kernel SMC would waste fabric cycles and, on a mis-programmed
        // node, reach the far machine as a spurious interrupt. Show both
        // halves with the northbridge model.
        use tcc_ht::packet::{Command, Packet, UnitId};
        use tcc_opteron::nb::{Disposition, Northbridge, Source};
        use tcc_opteron::regs::{LinkId, NodeId};

        let intr = Packet::control(Command::Broadcast {
            unit: UnitId::HOST,
            addr: 0xFEE0_0000,
        });

        // Correctly booted node: filtered.
        let mut good = Northbridge::new(NodeId(0));
        good.broadcast_enable = [false; 4];
        assert!(matches!(
            good.dispose(&intr, Source::Core).unwrap(),
            Disposition::Filtered { .. }
        ));

        // Mis-programmed node (stock firmware): the SMC escapes over the
        // TCC link — this is exactly the failure the custom kernel
        // prevents at the source.
        let mut bad = Northbridge::new(NodeId(0));
        bad.broadcast_enable = [false, false, true, false]; // link2 = TCC
        match bad.dispose(&intr, Source::Core).unwrap() {
            Disposition::Forward { link } => assert_eq!(link, LinkId(2)),
            other => panic!("expected escape, got {other:?}"),
        }
    }
}
