//! The `/dev/tcc` character-device model (paper §V "Enabling Remote
//! Access" / §VI "a Linux driver which can map remote TCCluster memory
//! addresses into the user space").
//!
//! The device refuses to open on a kernel that fails the TCCluster audit,
//! knows the booted cluster's address layout, and services the two mmap
//! requests the message library needs — remote windows (write-only,
//! write-combining) and local exported windows (uncacheable) — with full
//! bounds validation against the global address map.

use crate::kernel::{audit, KernelConfig, Violation};
use crate::vm::{AddressSpace, Backing, CacheAttr, MapError, Prot, PAGE};
use tcc_firmware::topology::ClusterSpec;

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Kernel failed the load-time audit.
    KernelNotReady(Vec<Violation>),
    /// Target node does not exist.
    NoSuchNode {
        supernode: usize,
        processor: usize,
    },
    /// Mapping one's own node as "remote" (would route to local DRAM and
    /// bypass the UC rules — a driver must refuse).
    SelfRemote,
    /// Window outside the target's exported slice.
    OutOfWindow {
        offset: u64,
        len: u64,
    },
    Vm(MapError),
}

impl From<MapError> for DevError {
    fn from(e: MapError) -> Self {
        DevError::Vm(e)
    }
}

impl core::fmt::Display for DevError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DevError::KernelNotReady(v) => write!(f, "kernel not TCCluster-ready: {v:?}"),
            DevError::NoSuchNode {
                supernode,
                processor,
            } => {
                write!(f, "no node at supernode {supernode} processor {processor}")
            }
            DevError::SelfRemote => write!(f, "refusing to map own memory as remote"),
            DevError::OutOfWindow { offset, len } => {
                write!(f, "window [{offset:#x}+{len:#x}) exceeds exported slice")
            }
            DevError::Vm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DevError {}

/// An open device on one node.
#[derive(Debug)]
pub struct TccDevice {
    spec: ClusterSpec,
    /// (supernode, processor) of the node this device runs on.
    pub supernode: usize,
    pub processor: usize,
}

/// Topology info returned by the query ioctl.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyInfo {
    pub supernodes: usize,
    pub processors_per_supernode: usize,
    pub my_rank: usize,
    pub exported_bytes: u64,
}

impl TccDevice {
    /// `open("/dev/tcc")` — fails unless the kernel passed the audit.
    pub fn open(
        spec: ClusterSpec,
        supernode: usize,
        processor: usize,
        kernel: &KernelConfig,
    ) -> Result<Self, DevError> {
        let violations = audit(kernel);
        if !violations.is_empty() {
            return Err(DevError::KernelNotReady(violations));
        }
        if supernode >= spec.supernode_count() || processor >= spec.supernode.processors {
            return Err(DevError::NoSuchNode {
                supernode,
                processor,
            });
        }
        Ok(TccDevice {
            spec,
            supernode,
            processor,
        })
    }

    /// The topology-query ioctl.
    pub fn topology(&self) -> TopologyInfo {
        TopologyInfo {
            supernodes: self.spec.supernode_count(),
            processors_per_supernode: self.spec.supernode.processors,
            my_rank: self.spec.proc_index(self.supernode, self.processor),
            exported_bytes: self.spec.supernode.dram_per_node,
        }
    }

    /// Map `[offset, offset+len)` of a peer node's exported slice at user
    /// VA `va`: write-only, write-combining — the send window.
    pub fn map_remote(
        &self,
        aspace: &mut AddressSpace,
        va: u64,
        supernode: usize,
        processor: usize,
        offset: u64,
        len: u64,
    ) -> Result<(), DevError> {
        if supernode >= self.spec.supernode_count() || processor >= self.spec.supernode.processors {
            return Err(DevError::NoSuchNode {
                supernode,
                processor,
            });
        }
        if (supernode, processor) == (self.supernode, self.processor) {
            return Err(DevError::SelfRemote);
        }
        self.check_window(offset, len)?;
        let global = self.spec.node_base(supernode, processor) + offset;
        aspace.mmap(
            va,
            len,
            Backing::Remote {
                global_addr: global,
            },
            Prot::WO,
            CacheAttr::WriteCombining,
        )?;
        Ok(())
    }

    /// Map `[offset, offset+len)` of this node's exported slice at `va`:
    /// readable, uncacheable — the receive window.
    pub fn map_local(
        &self,
        aspace: &mut AddressSpace,
        va: u64,
        offset: u64,
        len: u64,
    ) -> Result<(), DevError> {
        self.check_window(offset, len)?;
        aspace.mmap(
            va,
            len,
            Backing::LocalExported { offset },
            Prot::RW,
            CacheAttr::Uncacheable,
        )?;
        Ok(())
    }

    fn check_window(&self, offset: u64, len: u64) -> Result<(), DevError> {
        let slice = self.spec.supernode.dram_per_node;
        if !offset.is_multiple_of(PAGE) || len == 0 || offset + len > slice {
            return Err(DevError::OutOfWindow { offset, len });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_firmware::topology::{ClusterTopology, SupernodeSpec};

    fn spec() -> ClusterSpec {
        ClusterSpec::new(SupernodeSpec::new(2, 1 << 20), ClusterTopology::Pair)
    }

    fn dev() -> TccDevice {
        TccDevice::open(spec(), 0, 0, &KernelConfig::tcc_2_6_34()).unwrap()
    }

    #[test]
    fn stock_kernel_cannot_open() {
        let err = TccDevice::open(spec(), 0, 0, &KernelConfig::stock_2_6_34());
        assert!(matches!(err, Err(DevError::KernelNotReady(_))));
    }

    #[test]
    fn topology_query() {
        let t = dev().topology();
        assert_eq!(t.supernodes, 2);
        assert_eq!(t.processors_per_supernode, 2);
        assert_eq!(t.my_rank, 0);
        assert_eq!(t.exported_bytes, 1 << 20);
    }

    #[test]
    fn remote_mapping_end_to_end() {
        let d = dev();
        let mut aspace = AddressSpace::new();
        d.map_remote(&mut aspace, 0x10_0000, 1, 0, 2 * PAGE, 8 * PAGE)
            .unwrap();
        // A store into the window translates to the peer's global slice.
        let global_base = spec().node_base(1, 0) + 2 * PAGE;
        assert_eq!(
            aspace.store_translate(0x10_0000 + 0x18).unwrap(),
            Backing::Remote {
                global_addr: global_base + 0x18
            }
        );
        // Loads fault — the write-only contract, enforced in software.
        assert!(matches!(
            aspace.load_translate(0x10_0000),
            Err(MapError::Protection(_))
        ));
    }

    #[test]
    fn self_remote_refused() {
        let d = dev();
        let mut aspace = AddressSpace::new();
        assert_eq!(
            d.map_remote(&mut aspace, 0x10_0000, 0, 0, 0, PAGE),
            Err(DevError::SelfRemote)
        );
    }

    #[test]
    fn window_bounds_enforced() {
        let d = dev();
        let mut aspace = AddressSpace::new();
        assert!(matches!(
            d.map_remote(&mut aspace, 0x10_0000, 1, 1, 1 << 20, PAGE),
            Err(DevError::OutOfWindow { .. })
        ));
        assert!(matches!(
            d.map_local(&mut aspace, 0x20_0000, (1 << 20) - 2048, PAGE),
            Err(DevError::OutOfWindow { .. })
        ));
    }

    #[test]
    fn local_mapping_is_uc_and_readable() {
        let d = dev();
        let mut aspace = AddressSpace::new();
        d.map_local(&mut aspace, 0x20_0000, 0, 4 * PAGE).unwrap();
        assert_eq!(
            aspace.load_translate(0x20_0000 + 64).unwrap(),
            Backing::LocalExported { offset: 64 }
        );
        assert_eq!(
            aspace.store_translate(0x20_0000 + 64).unwrap(),
            Backing::LocalExported { offset: 64 }
        );
    }

    #[test]
    fn nonexistent_peer_refused() {
        let d = dev();
        let mut aspace = AddressSpace::new();
        assert!(matches!(
            d.map_remote(&mut aspace, 0, 7, 0, 0, PAGE),
            Err(DevError::NoSuchNode { .. })
        ));
    }
}
