//! Page-granular virtual-memory mapping (paper §V: "The API requests page
//! wise memory mapping of remote addresses into user space").
//!
//! The driver maps two kinds of pages into a process:
//!
//! * **remote pages** — windows onto another node's exported memory.
//!   They must be write-only (the fabric routes no read responses) and
//!   write-combining (so stores coalesce into 64 B HT packets);
//! * **local exported pages** — this node's receive buffers. They must be
//!   uncacheable (incoming posted writes cannot invalidate caches) and
//!   readable.
//!
//! The model tracks mappings per process and enforces the attribute rules
//! the real driver derives from the MTRRs/PAT; every violation the tests
//! provoke corresponds to a real crash or data-corruption mode.

use std::collections::BTreeMap;

/// Page size (x86-64 4 KiB pages).
pub const PAGE: u64 = 4096;

/// Access protection of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prot {
    pub read: bool,
    pub write: bool,
}

impl Prot {
    pub const WO: Prot = Prot {
        read: false,
        write: true,
    };
    pub const RW: Prot = Prot {
        read: true,
        write: true,
    };
    pub const RO: Prot = Prot {
        read: true,
        write: false,
    };
}

/// Page cache attribute (derived from MTRR/PAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAttr {
    WriteBack,
    Uncacheable,
    WriteCombining,
}

/// What a virtual page maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backing {
    /// A remote node's exported window (global physical address).
    Remote { global_addr: u64 },
    /// This node's exported DRAM (local physical offset).
    LocalExported { offset: u64 },
    /// Ordinary anonymous memory.
    Anon,
}

/// One mapping record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    pub backing: Backing,
    pub prot: Prot,
    pub attr: CacheAttr,
}

/// Mapping errors — each is a real failure mode of the hardware trick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    Unaligned(u64),
    Overlap(u64),
    /// Remote pages must be write-only: a load would allocate a SrcTag
    /// whose response can never route back (machine hang).
    RemoteMustBeWriteOnly,
    /// Remote pages must be WC (or at least UC); WB would let the cache
    /// satisfy loads and reorder stores arbitrarily.
    RemoteMustBeWriteCombining,
    /// Local exported pages must be UC: a WB mapping reads stale cache
    /// lines because incoming posted writes do not invalidate.
    ExportedMustBeUncacheable,
    NotMapped(u64),
    Protection(u64),
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::Unaligned(a) => write!(f, "address {a:#x} not page aligned"),
            MapError::Overlap(a) => write!(f, "page {a:#x} already mapped"),
            MapError::RemoteMustBeWriteOnly => {
                write!(
                    f,
                    "remote window mapped readable: loads cannot complete over a TCC link"
                )
            }
            MapError::RemoteMustBeWriteCombining => {
                write!(f, "remote window must be write-combining")
            }
            MapError::ExportedMustBeUncacheable => {
                write!(f, "exported receive buffer must be uncacheable")
            }
            MapError::NotMapped(a) => write!(f, "no mapping at {a:#x}"),
            MapError::Protection(a) => write!(f, "protection fault at {a:#x}"),
        }
    }
}

impl std::error::Error for MapError {}

/// One process's TCCluster-relevant address space.
#[derive(Debug, Default)]
pub struct AddressSpace {
    pages: BTreeMap<u64, Mapping>,
}

impl AddressSpace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Map `len` bytes at user VA `va`.
    pub fn mmap(
        &mut self,
        va: u64,
        len: u64,
        backing: Backing,
        prot: Prot,
        attr: CacheAttr,
    ) -> Result<(), MapError> {
        if !va.is_multiple_of(PAGE) || !len.is_multiple_of(PAGE) || len == 0 {
            return Err(MapError::Unaligned(va));
        }
        // The driver's attribute rules.
        match backing {
            Backing::Remote { .. } => {
                if prot.read {
                    return Err(MapError::RemoteMustBeWriteOnly);
                }
                if attr != CacheAttr::WriteCombining {
                    return Err(MapError::RemoteMustBeWriteCombining);
                }
            }
            Backing::LocalExported { .. } => {
                if attr != CacheAttr::Uncacheable {
                    return Err(MapError::ExportedMustBeUncacheable);
                }
            }
            Backing::Anon => {}
        }
        // No overlaps.
        for page in (va..va + len).step_by(PAGE as usize) {
            if self.pages.contains_key(&page) {
                return Err(MapError::Overlap(page));
            }
        }
        for (i, page) in (va..va + len).step_by(PAGE as usize).enumerate() {
            let backing = match backing {
                Backing::Remote { global_addr } => Backing::Remote {
                    global_addr: global_addr + i as u64 * PAGE,
                },
                Backing::LocalExported { offset } => Backing::LocalExported {
                    offset: offset + i as u64 * PAGE,
                },
                Backing::Anon => Backing::Anon,
            };
            self.pages.insert(
                page,
                Mapping {
                    backing,
                    prot,
                    attr,
                },
            );
        }
        Ok(())
    }

    pub fn munmap(&mut self, va: u64, len: u64) -> Result<(), MapError> {
        if !va.is_multiple_of(PAGE) || !len.is_multiple_of(PAGE) {
            return Err(MapError::Unaligned(va));
        }
        for page in (va..va + len).step_by(PAGE as usize) {
            self.pages.remove(&page).ok_or(MapError::NotMapped(page))?;
        }
        Ok(())
    }

    /// Translate a user store: returns the backing target.
    pub fn store_translate(&self, va: u64) -> Result<Backing, MapError> {
        let m = self.lookup(va)?;
        if !m.prot.write {
            return Err(MapError::Protection(va));
        }
        Ok(self.offset_backing(va, m))
    }

    /// Translate a user load.
    pub fn load_translate(&self, va: u64) -> Result<Backing, MapError> {
        let m = self.lookup(va)?;
        if !m.prot.read {
            return Err(MapError::Protection(va));
        }
        Ok(self.offset_backing(va, m))
    }

    fn lookup(&self, va: u64) -> Result<Mapping, MapError> {
        let page = va & !(PAGE - 1);
        self.pages
            .get(&page)
            .copied()
            .ok_or(MapError::NotMapped(va))
    }

    fn offset_backing(&self, va: u64, m: Mapping) -> Backing {
        let in_page = va & (PAGE - 1);
        match m.backing {
            Backing::Remote { global_addr } => Backing::Remote {
                global_addr: global_addr + in_page,
            },
            Backing::LocalExported { offset } => Backing::LocalExported {
                offset: offset + in_page,
            },
            Backing::Anon => Backing::Anon,
        }
    }

    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_window_mapping_rules() {
        let mut a = AddressSpace::new();
        // Correct: write-only, write-combining.
        a.mmap(
            0x10_0000,
            2 * PAGE,
            Backing::Remote {
                global_addr: 0x1_0000_2000,
            },
            Prot::WO,
            CacheAttr::WriteCombining,
        )
        .unwrap();
        // Readable remote mapping refused.
        assert_eq!(
            a.mmap(
                0x20_0000,
                PAGE,
                Backing::Remote {
                    global_addr: 0x1_0000_0000
                },
                Prot::RW,
                CacheAttr::WriteCombining
            ),
            Err(MapError::RemoteMustBeWriteOnly)
        );
        // WB remote mapping refused.
        assert_eq!(
            a.mmap(
                0x20_0000,
                PAGE,
                Backing::Remote {
                    global_addr: 0x1_0000_0000
                },
                Prot::WO,
                CacheAttr::WriteBack
            ),
            Err(MapError::RemoteMustBeWriteCombining)
        );
    }

    #[test]
    fn exported_pages_must_be_uc() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.mmap(
                0x30_0000,
                PAGE,
                Backing::LocalExported { offset: 0 },
                Prot::RW,
                CacheAttr::WriteBack
            ),
            Err(MapError::ExportedMustBeUncacheable)
        );
        a.mmap(
            0x30_0000,
            PAGE,
            Backing::LocalExported { offset: 0 },
            Prot::RW,
            CacheAttr::Uncacheable,
        )
        .unwrap();
    }

    #[test]
    fn translation_offsets_within_pages() {
        let mut a = AddressSpace::new();
        a.mmap(
            0x40_0000,
            2 * PAGE,
            Backing::Remote {
                global_addr: 0x2_0000_0000,
            },
            Prot::WO,
            CacheAttr::WriteCombining,
        )
        .unwrap();
        assert_eq!(
            a.store_translate(0x40_0000 + PAGE + 0x123).unwrap(),
            Backing::Remote {
                global_addr: 0x2_0000_1123
            }
        );
        // Loads from the write-only window fault (the driver's protection
        // is what turns an impossible fabric read into a clean SIGSEGV).
        assert_eq!(
            a.load_translate(0x40_0000),
            Err(MapError::Protection(0x40_0000))
        );
    }

    #[test]
    fn overlap_and_alignment_checks() {
        let mut a = AddressSpace::new();
        a.mmap(0x1000, PAGE, Backing::Anon, Prot::RW, CacheAttr::WriteBack)
            .unwrap();
        assert_eq!(
            a.mmap(0x1000, PAGE, Backing::Anon, Prot::RW, CacheAttr::WriteBack),
            Err(MapError::Overlap(0x1000))
        );
        assert_eq!(
            a.mmap(0x1234, PAGE, Backing::Anon, Prot::RW, CacheAttr::WriteBack),
            Err(MapError::Unaligned(0x1234))
        );
    }

    #[test]
    fn munmap_releases() {
        let mut a = AddressSpace::new();
        a.mmap(
            0x5000,
            2 * PAGE,
            Backing::Anon,
            Prot::RW,
            CacheAttr::WriteBack,
        )
        .unwrap();
        assert_eq!(a.mapped_pages(), 2);
        a.munmap(0x5000, 2 * PAGE).unwrap();
        assert_eq!(a.mapped_pages(), 0);
        assert_eq!(a.munmap(0x5000, PAGE), Err(MapError::NotMapped(0x5000)));
        assert!(matches!(
            a.store_translate(0x5000),
            Err(MapError::NotMapped(_))
        ));
    }
}
